// Package serve is dcatch's detection-as-a-service subsystem: a long-running
// HTTP front-end that accepts many concurrent analysis jobs and runs the
// existing pipeline behind a bounded worker pool.
//
// Race prediction from traces scales by throughput over many traces rather
// than by any single analysis, so the pipeline that PRs 1–3 made parallel,
// memory-bounded and observable gets a serving surface here: subject jobs
// re-run registered benchmarks under arbitrary core.Options (full pipeline,
// optionally through the triggering module), and trace jobs analyze a
// client-uploaded binary trace TA-only via core.AnalyzeTrace. Reports are
// rendered by the same functions the CLI prints through, so a fetched
// report is byte-identical to the corresponding local run.
//
// Load discipline: a bounded queue in front of a CPU-sized worker pool;
// per-job memory-budget admission against Config.MemBudget so concurrent
// analyses cannot OOM the process past its budget; HTTP 429 + Retry-After
// when the queue is full; request-body size limits on uploads; and a
// content-addressed report cache so identical resubmissions skip analysis
// entirely. Shutdown drains accepted jobs through lifecycle.Drainer — the
// same helper the trigger controller server uses.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dcatch/internal/bench"
	"dcatch/internal/cluster"
	"dcatch/internal/core"
	"dcatch/internal/hb"
	"dcatch/internal/obs"
	"dcatch/internal/scancache"
	"dcatch/internal/stream"
	"dcatch/internal/subjects"
	"dcatch/internal/trace"
	"dcatch/internal/trigger"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers is the analysis worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (default 64).
	QueueDepth int
	// MemBudget is the server-wide admission budget in bytes: the sum of
	// running jobs' declared analysis footprints never exceeds it
	// (0 = unlimited).
	MemBudget int64
	// DefaultJobBytes is the admission estimate for jobs that do not
	// declare their own HB memory budget (default 64 MiB).
	DefaultJobBytes int64
	// MaxBodyBytes caps request bodies, i.e. trace uploads (default 64 MiB).
	MaxBodyBytes int64
	// CacheEntries bounds the content-addressed report cache (default 256;
	// negative disables caching).
	CacheEntries int
	// EventBuffer bounds each job's event ring: late subscribers to
	// GET /v1/jobs/{id}/events replay at most this many events, and a slow
	// consumer starts dropping once roughly this far behind (default 512).
	EventBuffer int
	// EventHeartbeat is the idle keep-alive interval on event streams
	// (default 5s).
	EventHeartbeat time.Duration
	// NoJobTelemetry disables per-job recorders: jobs run with a nil
	// observer, so /v1/jobs/{id}/metrics is empty and /metrics carries only
	// service-level data. Reports are byte-identical either way.
	NoJobTelemetry bool
	// Peers lists cluster worker base URLs ("http://host:port"). Non-empty
	// switches trace jobs to coordinator mode: the upload is partitioned by
	// chunk window, windows are scanned by the peers (with local re-runs on
	// failure), and the merged report is byte-identical to the single-node
	// chunked path. Subject jobs are unaffected.
	Peers []string
	// Worker exposes the window-scan RPC (POST /v1/cluster/scan), backed by
	// the same admission gate and drainer as local jobs.
	Worker bool
	// WorkerScans caps concurrent remote window scans in worker mode;
	// excess requests are answered 429 immediately (default: Workers).
	WorkerScans int
	// ClusterChunk is the window size, in records, for coordinated trace
	// jobs that do not set chunk_size themselves (default 50000).
	ClusterChunk int
	// ScanCache, when non-nil, memoizes per-window detection scans across
	// jobs: the streaming/chunked local path, coordinator dispatch, and
	// worker-mode scan handling all consult it, so a resubmitted trace
	// with few changed records re-scans only its dirty windows. Reports
	// are byte-identical with or without it.
	ScanCache *scancache.Cache
	// Obs receives service counters and progress logs; nil allocates an
	// internal recorder (exposed via Recorder).
	Obs *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = defaultWorkers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultJobBytes <= 0 {
		c.DefaultJobBytes = 64 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 512
	}
	if c.EventHeartbeat <= 0 {
		c.EventHeartbeat = 5 * time.Second
	}
	if c.WorkerScans <= 0 {
		c.WorkerScans = c.Workers
	}
	if c.ClusterChunk <= 0 {
		c.ClusterChunk = 50_000
	}
	return c
}

// Server is the detection service: construct with New, mount Handler on an
// http.Server, and Shutdown on SIGTERM.
type Server struct {
	cfg Config
	rec *obs.Recorder
	reg *obs.Registry
	mgr *manager
	mux *http.ServeMux

	// streamFrontier sums the online sweep frontiers of trace uploads
	// currently being ingested — the stream.frontier_bytes gauge.
	streamFrontier atomic.Int64
}

// Servers registered for the shared "dcatch_serve" expvar (expvar.Publish
// is once-per-process; tests create many servers).
var (
	serveExpvarOnce sync.Once
	serveExpvarMu   sync.Mutex
	serveServers    []*Server
)

// New builds a ready-to-serve detection service.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	rec := cfg.Obs
	if rec == nil {
		rec = obs.New()
	}
	s := &Server{cfg: cfg, rec: rec, reg: obs.NewRegistry(), mgr: newManager(cfg, rec)}
	s.reg.Register(rec)
	s.registerGauges()
	s.routes()

	serveExpvarOnce.Do(func() {
		expvar.Publish("dcatch_serve", expvar.Func(func() any {
			serveExpvarMu.Lock()
			defer serveExpvarMu.Unlock()
			snaps := make([]map[string]any, 0, len(serveServers))
			for _, srv := range serveServers {
				snap := srv.mgr.statsSnapshot()
				snap["counters"] = srv.rec.Counters()
				snaps = append(snaps, snap)
			}
			return snaps
		}))
	})
	serveExpvarMu.Lock()
	serveServers = append(serveServers, s)
	serveExpvarMu.Unlock()
	return s
}

// Recorder returns the service's observability recorder (counters such as
// serve.jobs.submitted, serve.cache.hits, serve.rejected.queue_full).
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Registry returns the service's metrics registry: the base recorder plus
// every accepted job's recorder, exported on GET /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// registerGauges wires the manager's live load-discipline state into the
// registry as sampled-at-scrape gauges.
func (s *Server) registerGauges() {
	m := s.mgr
	s.reg.Gauge("serve.queue_depth", func() float64 { return float64(len(m.queue)) })
	s.reg.Gauge("serve.queue_cap", func() float64 { return float64(cap(m.queue)) })
	s.reg.Gauge("serve.workers", func() float64 { return float64(m.cfg.Workers) })
	s.reg.Gauge("serve.mem_in_use_bytes", func() float64 { return float64(m.mem.inUse()) })
	s.reg.Gauge("serve.mem_budget_bytes", func() float64 { return float64(m.cfg.MemBudget) })
	s.reg.Gauge("serve.cache_entries", func() float64 { return float64(m.cache.len()) })
	s.reg.Gauge("serve.running", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.running)
	})
	s.reg.Gauge("serve.jobs", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.jobs))
	})
	s.reg.Gauge("serve.draining", func() float64 {
		if m.draining.Load() {
			return 1
		}
		return 0
	})
	s.reg.Gauge("stream.frontier_bytes", func() float64 {
		return float64(s.streamFrontier.Load())
	})
	if sc := s.cfg.ScanCache; sc != nil {
		s.reg.Gauge("scancache.bytes", func() float64 { return float64(sc.Bytes()) })
		s.reg.Gauge("scancache.max_bytes", func() float64 { return float64(sc.MaxBytes()) })
		s.reg.Gauge("scancache.disk_bytes", func() float64 { return float64(sc.DiskBytes()) })
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains gracefully: intake stops (new submissions get 503),
// queued and running jobs finish within the context's deadline, workers
// exit. The server also leaves the shared expvar listing.
func (s *Server) Shutdown(ctx context.Context) {
	s.mgr.shutdown(ctx)
	serveExpvarMu.Lock()
	for i, srv := range serveServers {
		if srv == s {
			serveServers = append(serveServers[:i], serveServers[i+1:]...)
			break
		}
	}
	serveExpvarMu.Unlock()
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleJobMetrics)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.Worker {
		mux.Handle("POST "+cluster.ScanPath, cluster.NewWorker(cluster.WorkerConfig{
			Scans:        s.cfg.WorkerScans,
			MaxBodyBytes: s.cfg.MaxBodyBytes,
			Drain:        &s.mgr.drain,
			Obs:          s.rec,
			Admit:        s.admitScan,
			Cache:        s.cfg.ScanCache,
		}))
	}
	dm := obs.DebugMux(s.reg)
	mux.Handle("/debug/", dm)
	mux.Handle("/metrics", dm)
	s.mux = mux
}

// writeJSON emits one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps submission errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var (
		j   *job
		err error
	)
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		j, err = s.submitTrace(body, r)
	} else {
		j, err = s.submitSubject(body)
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("serve: request body exceeds %d bytes", tooLarge.Limit)})
			return
		}
		writeError(w, err)
		return
	}
	st := j.status()
	s.rec.Logf("job %s submitted: %s %s (cache_hit=%v)", st.ID, st.Kind, st.Bench, st.CacheHit)
	writeJSON(w, http.StatusAccepted, st)
}

// submitSubject parses a SubjectRequest and enqueues the full pipeline on
// the named benchmark.
func (s *Server) submitSubject(body io.Reader) (*job, error) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req SubjectRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: bad subject request: %w", err)
	}
	b := findBenchmark(req.Bench)
	if b == nil {
		return nil, fmt.Errorf("serve: unknown benchmark %q", req.Bench)
	}
	opts, err := coreOptions(req.Options)
	if err != nil {
		return nil, err
	}
	opts.MaxSteps = b.MaxSteps
	tel := s.newJobTelemetry()
	opts.Obs = tel.rec
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []int64{b.Seed}
	}
	jopt := req.Options
	run := func() (*jobResult, error) {
		res, err := core.DetectMulti(b.Workload, seeds, opts)
		if err != nil {
			return nil, err
		}
		var vals []trigger.Validation
		if jopt.Validate && !res.OOM {
			vals = core.ValidateAll(res, core.TriggerOptions{
				MaxSteps: 200_000, Naive: jopt.Naive, Obs: tel.rec,
			})
		}
		report := RenderSubject(b, res, vals, jopt.Validate)
		stats := res.Stats
		return &jobResult{report: []byte(report), summary: res.Summary(), stats: &stats, oom: res.OOM}, nil
	}
	key := subjectCacheKey(req.Bench, seeds, req.Options)
	j, err := s.mgr.submit(KindSubject, req.Bench, key, jopt.MemBudget, tel, run)
	if err != nil {
		return nil, err
	}
	s.reg.Register(tel.rec)
	return j, nil
}

// uploadSegmentBytes is how much of the request body one ingest step reads;
// each read becomes one streaming-analysis segment.
const uploadSegmentBytes = 256 << 10

// maxSegmentSpans caps per-segment spans in the job timeline so a large
// upload (hundreds of segments) cannot swamp the span tree; segments past
// the cap still count into serve.upload_segments.
const maxSegmentSpans = 64

// submitTrace ingests a binary trace straight off the request body: analysis
// starts at the first segment instead of after the upload completes. Each
// read is hashed (the content address covers the whole body, trailing bytes
// included), fed to the incremental decoder, and newly completed records run
// through the streaming engine's online provisional pass — so when the body
// ends, the per-record work is already done and provisional candidates are
// on the job's event stream. The authoritative finish runs in the job's run
// closure under the usual queue/admission discipline and stays
// byte-identical to the batch path (core.AnalyzeStreamed). Options ride in
// query parameters: parallel, reach, scan, mem_budget, chunk_size,
// max_group.
func (s *Server) submitTrace(body io.Reader, r *http.Request) (*job, error) {
	jopt, err := traceQueryOptions(r)
	if err != nil {
		return nil, err
	}
	if len(s.cfg.Peers) > 0 {
		return s.submitTraceCluster(body, jopt)
	}
	opts, err := coreOptions(jopt)
	if err != nil {
		return nil, err
	}
	tel := s.newJobTelemetry()
	opts.Obs = tel.rec

	var firstCand bool
	var readBytes int64
	an := stream.New(stream.Options{
		HB: opts.HB, Detect: opts.Detect, ChunkSize: opts.ChunkSize,
		Provisional: true,
		OnEvent: func(ev stream.Event) {
			switch ev.Kind {
			case stream.EventCandidate:
				tel.rec.Count("stream.provisional_candidates", 1)
				if !firstCand {
					firstCand = true
					tel.rec.Logf("stream: first provisional candidate at record %d (%d body bytes in)",
						ev.Records, readBytes)
				}
			case stream.EventRetract:
				tel.rec.Count("stream.retractions", 1)
			}
		},
		Obs:   tel.rec,
		Logf:  tel.rec.Logf,
		Cache: s.cfg.ScanCache,
	})

	// The live frontier gauge tracks ingests in flight; whatever this upload
	// contributed is withdrawn when the handler returns (the frontier is
	// frozen from then until the job's finish consumes it).
	var lastFrontier int64
	defer func() { s.streamFrontier.Add(-lastFrontier) }()

	h := sha256.New()
	dec := trace.NewStreamDecoder()
	dspan := tel.rec.Span("serve.decode")
	buf := make([]byte, uploadSegmentBytes)
	seg := 0
	metaSet := false
	for {
		n, rerr := body.Read(buf)
		if n > 0 {
			var ssp *obs.Span
			if seg < maxSegmentSpans {
				ssp = tel.rec.Span("serve.segment")
			}
			h.Write(buf[:n])
			readBytes += int64(n)
			nrec, derr := dec.Feed(buf[:n])
			if derr != nil {
				ssp.End()
				dspan.End()
				return nil, fmt.Errorf("serve: bad trace upload: %w", derr)
			}
			if !metaSet && dec.HeaderDone() {
				t := dec.Trace()
				an.SetMeta(t.Program, t.QueueConsumers)
				metaSet = true
			}
			if nrec > 0 {
				// Ingest without buffering: the decoder owns the records; the
				// analyzer adopts its trace wholesale once the body ends.
				recs := dec.Trace().Recs
				an.IngestBatch(recs[an.Records():])
			}
			ssp.Attr("bytes", n)
			ssp.Attr("records", an.Records())
			ssp.End()
			seg++
			tel.rec.Count("serve.upload_segments", 1)
			cur := an.FrontierBytes()
			s.streamFrontier.Add(cur - lastFrontier)
			lastFrontier = cur
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			dspan.End()
			return nil, fmt.Errorf("serve: reading trace upload: %w", rerr)
		}
	}
	tr, err := dec.Finish()
	if err != nil {
		dspan.End()
		return nil, fmt.Errorf("serve: bad trace upload: %w", err)
	}
	an.AppendTrace(tr) // adopt the decoder's records, no second copy
	dspan.Attr("records", len(tr.Recs))
	dspan.Attr("segments", seg)
	dspan.End()
	run := func() (*jobResult, error) {
		res, err := core.AnalyzeStreamed(an, opts)
		if err != nil {
			return nil, err
		}
		stats := res.Stats
		return &jobResult{report: []byte(RenderTrace(res)), summary: res.Summary(), stats: &stats, oom: res.OOM}, nil
	}
	key := traceCacheKey(h.Sum(nil), jopt)
	if opts.ChunkSize > 0 && hb.FullBuildExceedsBudget(tr, opts.HB) {
		// This job will take the windowed path, whose report is
		// byte-identical to a coordinated cluster run over the same bytes
		// and options — share one whole-report cache entry across both.
		key = chunkedTraceCacheKey(h.Sum(nil), jopt)
	}
	j, err := s.mgr.submit(KindTrace, tr.Program, key, jopt.MemBudget, tel, run)
	if err != nil {
		return nil, err
	}
	s.reg.Register(tel.rec)
	return j, nil
}

// traceQueryOptions parses trace-job options from query parameters.
func traceQueryOptions(r *http.Request) (JobOptions, error) {
	var o JobOptions
	q := r.URL.Query()
	intQ := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("serve: bad query parameter %s=%q", name, v)
			}
			*dst = n
		}
		return nil
	}
	if err := intQ("parallel", &o.Parallelism); err != nil {
		return o, err
	}
	if err := intQ("chunk_size", &o.ChunkSize); err != nil {
		return o, err
	}
	if err := intQ("max_group", &o.MaxGroup); err != nil {
		return o, err
	}
	if v := q.Get("mem_budget"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return o, fmt.Errorf("serve: bad query parameter mem_budget=%q", v)
		}
		o.MemBudget = n
	}
	o.Reach = q.Get("reach")
	o.Scan = q.Get("scan")
	return o, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.list())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	st := j.status()
	switch st.State {
	case StateDone:
		j.mu.Lock()
		report := j.result.report
		j.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(report)
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: st.Error})
	case StateCanceled:
		writeJSON(w, http.StatusConflict, errorBody{Error: "job canceled"})
	default:
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not finished: " + st.State})
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.cancelJob(r.PathValue("id")); err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	j, _ := s.mgr.get(r.PathValue("id"))
	writeJSON(w, http.StatusOK, j.status())
}

// handleHealthz is pure liveness: it reads one atomic and answers, with no
// locks shared with the job path, so probes stay cheap and truthful no
// matter how loaded the service is. Operational detail lives on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.mgr.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: the full load-discipline snapshot —
// queue depth and capacity, admission headroom, drain state — answering 503
// while draining so load balancers stop routing before intake refuses.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	snap := s.mgr.statsSnapshot()
	if s.cfg.MemBudget > 0 {
		headroom := s.cfg.MemBudget - s.mgr.mem.inUse()
		if headroom < 0 {
			headroom = 0
		}
		snap["admission_headroom_bytes"] = headroom
	} else {
		snap["admission_headroom_bytes"] = int64(-1) // unlimited
	}
	if sc := s.cfg.ScanCache; sc != nil {
		headroom := sc.MaxBytes() - sc.Bytes()
		if headroom < 0 {
			headroom = 0
		}
		snap["scancache_headroom_bytes"] = headroom
		if sc.Persistent() {
			dh := sc.DiskMaxBytes() - sc.DiskBytes()
			if dh < 0 {
				dh = 0
			}
			snap["scancache_disk_headroom_bytes"] = dh
		}
	}
	if closing, _ := snap["closing"].(bool); closing {
		snap["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, snap)
		return
	}
	snap["status"] = "ok"
	writeJSON(w, http.StatusOK, snap)
}

// findBenchmark resolves a registered benchmark by ID.
func findBenchmark(id string) *subjects.Benchmark {
	for _, b := range bench.Benchmarks() {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// WaitTerminal blocks until the job leaves the queue/run states or the
// context expires; used by in-process callers and tests.
func (s *Server) WaitTerminal(ctx context.Context, id string) (JobStatus, error) {
	j, ok := s.mgr.get(id)
	if !ok {
		return JobStatus{}, fmt.Errorf("serve: unknown job %s", id)
	}
	select {
	case <-j.done:
		return j.status(), nil
	case <-ctx.Done():
		return j.status(), ctx.Err()
	}
}
