package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dcatch/internal/core"
	"dcatch/internal/lifecycle"
	"dcatch/internal/obs"
)

// Submission errors, mapped onto HTTP statuses by the handlers.
var (
	// ErrQueueFull is returned when the bounded job queue has no room; the
	// HTTP layer answers 429 with Retry-After.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrShuttingDown is returned once graceful shutdown has begun.
	ErrShuttingDown = errors.New("serve: shutting down")
)

// jobResult is what a finished analysis leaves behind: the rendered report
// (byte-identical to the local CLI's output), its one-line summary and the
// pipeline stats. Cached results are shared across jobs and never mutated.
type jobResult struct {
	report  []byte
	summary string
	stats   *core.Stats
	oom     bool
}

// job is one unit of work moving through the manager. The run closure
// captures the decoded inputs (benchmark + options, or trace + options);
// the manager stays oblivious to what kind of analysis it is running.
type job struct {
	id       string
	kind     string
	bench    string
	cacheKey string
	memNeed  int64
	run      func() (*jobResult, error)
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{} // closed on terminal state
	rec      *obs.Recorder // per-job telemetry (nil with NoJobTelemetry)
	hub      *eventHub     // live event stream (nil on direct submissions)
	qspan    *obs.Span     // open serve.queue_wait span, set before enqueue

	mu        sync.Mutex
	state     string
	claimed   bool // a worker owns the terminal transition
	cacheHit  bool
	errMsg    string
	created   time.Time
	claimedAt time.Time
	started   time.Time
	finished  time.Time
	result    *jobResult
}

// status snapshots the job for the API.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		Kind:     j.kind,
		Bench:    j.bench,
		State:    j.state,
		CacheHit: j.cacheHit,
		Error:    j.errMsg,
		Created:  j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.result != nil {
		st.Summary = j.result.summary
		st.Stats = j.result.stats
		st.OOM = j.result.oom
	}
	return st
}

// manager owns the bounded queue, the worker pool and the admission gate.
type manager struct {
	cfg   Config
	rec   *obs.Recorder
	queue chan *job
	mem   *memGate
	cache *cache
	drain lifecycle.Drainer // accepted-but-unfinished jobs
	wg    sync.WaitGroup    // worker goroutines

	// draining flips once shutdown begins; /healthz reads only this, so
	// liveness stays cheap no matter how contended the manager mutex is.
	draining atomic.Bool

	mu      sync.Mutex
	closed  bool
	jobs    map[string]*job
	order   []string
	nextID  int
	running int
}

func newManager(cfg Config, rec *obs.Recorder) *manager {
	m := &manager{
		cfg:   cfg,
		rec:   rec,
		queue: make(chan *job, cfg.QueueDepth),
		mem:   &memGate{cap: cfg.MemBudget},
		cache: newCache(cfg.CacheEntries),
		jobs:  map[string]*job{},
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// submit registers a new job. A cache hit completes the job immediately
// (no queue slot, no analysis); otherwise the job takes a queue slot or is
// refused with ErrQueueFull.
func (m *manager) submit(kind, bench, cacheKey string, memNeed int64, tel jobTelemetry, run func() (*jobResult, error)) (*job, error) {
	if memNeed <= 0 {
		memNeed = m.cfg.DefaultJobBytes
	}
	if m.cfg.MemBudget > 0 && memNeed > m.cfg.MemBudget {
		// A need beyond the whole budget waits for an idle server and runs
		// alone rather than deadlocking admission forever.
		memNeed = m.cfg.MemBudget
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		kind:     kind,
		bench:    bench,
		cacheKey: cacheKey,
		memNeed:  memNeed,
		run:      run,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		rec:      tel.rec,
		hub:      tel.hub,
		state:    StateQueued,
		created:  time.Now(),
	}
	m.rec.Count("serve.jobs.submitted", 1)
	m.rec.Count("serve.jobs."+kind, 1)

	if res, ok := m.cache.get(cacheKey); ok {
		m.rec.Count("serve.cache.hits", 1)
		j.cacheHit = true
		j.state = StateDone
		j.result = res
		j.finished = j.created
		close(j.done)
		m.registerLocked(j)
		m.rec.Observe("serve.job.wall_us", 0)
		j.hub.publishState(StateDone)
		j.hub.close()
		return j, nil
	}
	m.rec.Count("serve.cache.misses", 1)

	if !m.drain.Enter() {
		cancel()
		return nil, ErrShuttingDown
	}
	// Open the queue-wait span and announce the queued state before the
	// queue send: a worker may claim the job the instant it lands in the
	// channel, and the send's happens-before edge makes j.qspan safe to
	// read lock-free in runJob.
	j.qspan = j.rec.Span("serve.queue_wait")
	j.hub.publishState(StateQueued)
	select {
	case m.queue <- j:
	default:
		m.drain.Exit()
		cancel()
		j.qspan.End()
		m.rec.Count("serve.rejected.queue_full", 1)
		return nil, ErrQueueFull
	}
	m.rec.CountMax("serve.queue.peak", int64(len(m.queue)))
	m.registerLocked(j)
	return j, nil
}

// registerLocked assigns the job its ID and records it; m.mu must be held.
func (m *manager) registerLocked(j *job) {
	m.nextID++
	j.id = fmt.Sprintf("j%06d", m.nextID)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
}

// get returns the job by ID.
func (m *manager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// list returns every job's status in submission order.
func (m *manager) list() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	return out
}

// cancelJob requests cancellation: a still-queued job goes terminal at
// once (its queue slot is skipped by the worker that eventually drains
// it); a job waiting for memory admission is released by its context; a
// running job cannot be interrupted mid-analysis and finishes normally.
func (m *manager) cancelJob(id string) error {
	j, ok := m.get(id)
	if !ok {
		return fmt.Errorf("serve: unknown job %s", id)
	}
	j.cancel()
	j.mu.Lock()
	if !j.claimed && j.state == StateQueued {
		j.state = StateCanceled
		j.finished = time.Now()
		created, finished := j.created, j.finished
		close(j.done)
		j.mu.Unlock()
		m.finishCounters(StateCanceled)
		j.qspan.End()
		m.rec.Observe("serve.job.wall_us", finished.Sub(created).Microseconds())
		j.hub.publishState(StateCanceled)
		j.hub.close()
		m.drain.Exit()
		return nil
	}
	j.mu.Unlock()
	return nil
}

func (m *manager) finishCounters(state string) {
	m.rec.Count("serve.jobs."+state, 1)
}

// worker drains the queue until shutdown closes it.
func (m *manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob takes one job through admission → analysis → terminal state.
func (m *manager) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled while queued; its terminal transition already happened.
		j.mu.Unlock()
		return
	}
	j.claimed = true
	j.claimedAt = time.Now()
	j.mu.Unlock()
	j.qspan.End()

	// Memory-budget admission: block until the job's declared analysis
	// footprint fits under the server-wide budget. Cancellation during the
	// wait releases this worker back to the pool immediately.
	aspan := j.rec.Span("serve.admission_wait")
	if err := m.mem.acquire(j.ctx, j.memNeed); err != nil {
		aspan.End()
		m.finish(j, StateCanceled, nil, "canceled while waiting for memory admission")
		return
	}
	aspan.End()
	m.rec.Count("serve.admitted.bytes", j.memNeed)
	defer m.mem.release(j.memNeed)

	if j.ctx.Err() != nil {
		m.finish(j, StateCanceled, nil, "canceled")
		return
	}

	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.hub.publishState(StateRunning)
	m.mu.Lock()
	m.running++
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.running--
		m.mu.Unlock()
	}()

	rspan := j.rec.Span("serve.run")
	res, err := runSafe(j.run)
	rspan.End()
	if err != nil {
		m.finish(j, StateFailed, nil, err.Error())
		return
	}
	m.rec.Count("serve.jobs.executed", 1)
	m.cache.put(j.cacheKey, res)
	m.finish(j, StateDone, res, "")
}

// finish moves a claimed job to its terminal state, closing its event
// stream and recording its stage waits into the service-level latency
// histograms (microsecond units, exported on /metrics).
func (m *manager) finish(j *job, state string, res *jobResult, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.finished = time.Now()
	created, claimed, started, finished := j.created, j.claimedAt, j.started, j.finished
	close(j.done)
	j.mu.Unlock()
	m.finishCounters(state)

	m.rec.Observe("serve.job.wall_us", finished.Sub(created).Microseconds())
	if !claimed.IsZero() {
		m.rec.Observe("serve.job.queue_wait_us", claimed.Sub(created).Microseconds())
	}
	if !started.IsZero() {
		m.rec.Observe("serve.job.admission_wait_us", started.Sub(claimed).Microseconds())
		m.rec.Observe("serve.job.run_us", finished.Sub(started).Microseconds())
	}
	j.hub.publishState(state)
	j.hub.close()
	m.drain.Exit()
}

// runSafe converts an analysis panic into a job failure instead of taking
// the whole service down with it.
func runSafe(run func() (*jobResult, error)) (res *jobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("serve: analysis panic: %v", r)
		}
	}()
	return run()
}

// shutdown stops intake and drains: queued and running jobs finish (they
// were accepted with a success status; clients expect their results), then
// the workers exit. The context bounds the wait; on expiry remaining jobs
// are canceled.
func (m *manager) shutdown(ctx context.Context) {
	m.draining.Store(true)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	timeout := time.Duration(0)
	if dl, ok := ctx.Deadline(); ok {
		timeout = time.Until(dl)
	}
	if m.drain.Close(timeout) {
		return
	}
	// Deadline expired: cancel whatever is left and give it a moment.
	m.mu.Lock()
	for _, j := range m.jobs {
		j.cancel()
	}
	m.mu.Unlock()
	m.drain.Close(time.Second)
}

// stats snapshots the manager's gauges for /healthz and expvar.
func (m *manager) statsSnapshot() map[string]any {
	m.mu.Lock()
	defer m.mu.Unlock()
	return map[string]any{
		"queue_depth":   len(m.queue),
		"queue_cap":     cap(m.queue),
		"running":       m.running,
		"workers":       m.cfg.Workers,
		"jobs":          len(m.jobs),
		"cache_entries": m.cache.len(),
		"mem_in_use":    m.mem.inUse(),
		"mem_budget":    m.cfg.MemBudget,
		"closing":       m.closed,
	}
}

// memGate is a FIFO weighted semaphore over the server-wide analysis
// memory budget. cap <= 0 means unlimited.
type memGate struct {
	mu      sync.Mutex
	cap     int64
	used    int64
	waiters []*memWaiter
}

type memWaiter struct {
	need  int64
	ready chan struct{}
}

// acquire blocks until need bytes fit under the budget or ctx is canceled.
// Grants are FIFO so a large job cannot be starved by a stream of small
// ones.
func (g *memGate) acquire(ctx context.Context, need int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if g.cap <= 0 {
		return nil
	}
	g.mu.Lock()
	if len(g.waiters) == 0 && g.used+need <= g.cap {
		g.used += need
		g.mu.Unlock()
		return nil
	}
	w := &memWaiter{need: need, ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		granted := true
		for i, x := range g.waiters {
			if x == w {
				g.waiters = slices.Delete(g.waiters, i, i+1)
				granted = false
				break
			}
		}
		if granted {
			// Lost the race with a grant: hand the tokens back.
			g.used -= w.need
			g.grantLocked()
		}
		g.mu.Unlock()
		return ctx.Err()
	}
}

// release returns need bytes to the budget and wakes eligible waiters.
func (g *memGate) release(need int64) {
	if g.cap <= 0 {
		return
	}
	g.mu.Lock()
	g.used -= need
	if g.used < 0 {
		panic("serve: memGate release without acquire")
	}
	g.grantLocked()
	g.mu.Unlock()
}

// grantLocked admits waiters in FIFO order while they fit; g.mu held.
func (g *memGate) grantLocked() {
	for len(g.waiters) > 0 && g.used+g.waiters[0].need <= g.cap {
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.used += w.need
		close(w.ready)
	}
}

// inUse returns the bytes currently admitted.
func (g *memGate) inUse() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// defaultWorkers sizes the pool by CPU.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
