package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dcatch/internal/core"
	"dcatch/internal/trigger"
)

// newTestServer starts a detection service on an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, NewClient(hs.URL)
}

// localSubjectReport reproduces exactly what the local CLI prints for the
// benchmark, through the same code path submitSubject runs.
func localSubjectReport(t *testing.T, benchID string, seeds []int64, jopt JobOptions) string {
	t.Helper()
	b := findBenchmark(benchID)
	if b == nil {
		t.Fatalf("unknown benchmark %s", benchID)
	}
	opts, err := coreOptions(jopt)
	if err != nil {
		t.Fatal(err)
	}
	opts.MaxSteps = b.MaxSteps
	if len(seeds) == 0 {
		seeds = []int64{b.Seed}
	}
	res, err := core.DetectMulti(b.Workload, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	var vals []trigger.Validation
	if jopt.Validate && !res.OOM {
		vals = core.ValidateAll(res, core.TriggerOptions{MaxSteps: 200_000, Naive: jopt.Naive})
	}
	return RenderSubject(b, res, vals, jopt.Validate)
}

// localTraceBytes runs a benchmark locally and returns its encoded trace
// plus the report a local TA-only analysis of that trace prints.
func localTraceBytes(t *testing.T, benchID string) ([]byte, string) {
	t.Helper()
	b := findBenchmark(benchID)
	if b == nil {
		t.Fatalf("unknown benchmark %s", benchID)
	}
	res, err := core.Detect(b.Workload, core.Options{Seed: b.Seed, MaxSteps: b.MaxSteps})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	ares, err := core.AnalyzeTrace(res.Trace, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), RenderTrace(ares)
}

func waitDone(t *testing.T, c *Client, id string) *JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

// TestSubjectRoundTrip submits a subject job over HTTP and asserts the
// served report is byte-identical to the local pipeline's rendering.
func TestSubjectRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Config{})
	want := localSubjectReport(t, "MR-3274", nil, JobOptions{})

	st, err := c.SubmitSubject(SubjectRequest{Bench: "MR-3274"})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning && st.State != StateDone {
		t.Fatalf("unexpected initial state %q", st.State)
	}
	st = waitDone(t, c, st.ID)
	if st.State != StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	if st.Summary == "" || st.Stats == nil {
		t.Errorf("terminal status missing summary/stats: %+v", st)
	}
	got, err := c.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("served report differs from local run:\n-- served --\n%s\n-- local --\n%s", got, want)
	}
}

// TestSubjectValidateRoundTrip covers the optional triggering-module leg.
func TestSubjectValidateRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Config{})
	jopt := JobOptions{Validate: true}
	want := localSubjectReport(t, "MR-3274", nil, jopt)

	st, err := c.SubmitSubject(SubjectRequest{Bench: "MR-3274", Options: jopt})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, c, st.ID)
	if st.State != StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	got, err := c.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("validated report differs from local run:\n-- served --\n%s\n-- local --\n%s", got, want)
	}
}

// TestTraceRoundTrip uploads a binary trace and asserts the served TA-only
// report matches a local core.AnalyzeTrace of the same bytes.
func TestTraceRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Config{})
	raw, want := localTraceBytes(t, "ZK-1144")

	st, err := c.SubmitTrace(bytes.NewReader(raw), JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindTrace {
		t.Errorf("kind = %q, want %q", st.Kind, KindTrace)
	}
	st = waitDone(t, c, st.ID)
	if st.State != StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	got, err := c.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("served trace report differs from local analysis:\n-- served --\n%s\n-- local --\n%s", got, want)
	}
}

// fragmentReader yields its data in fixed-size fragments, modelling a slow
// client whose upload arrives in many small reads.
type fragmentReader struct {
	data  []byte
	chunk int
}

func (f *fragmentReader) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, io.EOF
	}
	n := f.chunk
	if n > len(f.data) {
		n = len(f.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, f.data[:n])
	f.data = f.data[n:]
	return n, nil
}

// TestTraceStreamingIngest drives submitTrace with a deliberately fragmented
// body and asserts analysis starts during the upload — per-segment telemetry
// and provisional candidates land on the job before the body ends — while
// the final report stays byte-identical to the batch path.
func TestTraceStreamingIngest(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	raw, want := localTraceBytes(t, "ZK-1144")

	const chunk = 4 << 10
	req := httptest.NewRequest("POST", "/v1/jobs", nil)
	j, err := s.submitTrace(&fragmentReader{data: raw, chunk: chunk}, req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := s.WaitTerminal(ctx, j.id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	j.mu.Lock()
	rep := string(j.result.report)
	j.mu.Unlock()
	if rep != want {
		t.Errorf("streamed-ingest report differs from local analysis:\n-- served --\n%s\n-- local --\n%s", rep, want)
	}

	ctr := j.rec.Counters()
	wantSegs := int64((len(raw) + chunk - 1) / chunk)
	if ctr["serve.upload_segments"] != wantSegs {
		t.Errorf("serve.upload_segments = %d, want %d", ctr["serve.upload_segments"], wantSegs)
	}
	if ctr["stream.provisional_candidates"] == 0 {
		t.Error("no provisional candidates surfaced during ingest")
	}
	if ctr["stream.frontier_peak_bytes"] == 0 {
		t.Error("stream.frontier_peak_bytes not recorded")
	}
	var segSpans int
	for _, sd := range j.rec.Spans(0) {
		if sd.Name == "serve.segment" {
			segSpans++
		}
	}
	if segSpans == 0 || segSpans > maxSegmentSpans {
		t.Errorf("serve.segment spans = %d, want 1..%d", segSpans, maxSegmentSpans)
	}
	if _, ok := j.rec.HistogramData()["stream.append_lag_us"]; !ok {
		t.Error("stream.append_lag_us histogram missing from job telemetry")
	}
	// After the handler returned, this upload's frontier contribution must
	// have been withdrawn from the live gauge.
	if got := s.streamFrontier.Load(); got != 0 {
		t.Errorf("stream.frontier_bytes gauge = %d after ingest, want 0", got)
	}
}

// TestCacheHit resubmits identical jobs and asserts the repeats are served
// from the content-addressed cache without re-running analysis.
func TestCacheHit(t *testing.T) {
	s, c := newTestServer(t, Config{})

	st1, err := c.SubmitSubject(SubjectRequest{Bench: "ZK-1144"})
	if err != nil {
		t.Fatal(err)
	}
	st1 = waitDone(t, c, st1.ID)
	if st1.State != StateDone || st1.CacheHit {
		t.Fatalf("first run: state=%s cache_hit=%v", st1.State, st1.CacheHit)
	}
	rep1, err := c.Report(st1.ID)
	if err != nil {
		t.Fatal(err)
	}

	st2, err := c.SubmitSubject(SubjectRequest{Bench: "ZK-1144"})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("resubmission: state=%s cache_hit=%v, want immediate cached done", st2.State, st2.CacheHit)
	}
	rep2, err := c.Report(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep1, rep2) {
		t.Error("cached report differs from original")
	}

	// Different options miss the cache.
	st3, err := c.SubmitSubject(SubjectRequest{Bench: "ZK-1144", Options: JobOptions{SkipPrune: true}})
	if err != nil {
		t.Fatal(err)
	}
	if st3.CacheHit {
		t.Error("different options should not hit the cache")
	}
	waitDone(t, c, st3.ID)

	counters := s.Recorder().Counters()
	if counters["serve.cache.hits"] != 1 {
		t.Errorf("serve.cache.hits = %d, want 1", counters["serve.cache.hits"])
	}
	if counters["serve.jobs.executed"] != 2 {
		t.Errorf("serve.jobs.executed = %d, want 2 (cache hit must not re-run analysis)", counters["serve.jobs.executed"])
	}
	if counters["serve.jobs.submitted"] != 3 {
		t.Errorf("serve.jobs.submitted = %d, want 3", counters["serve.jobs.submitted"])
	}
}

// TestQueueFull429 fills the one-deep queue deterministically (the single
// worker is parked on a channel) and asserts a further HTTP submission gets
// 429 with Retry-After rather than blocking.
func TestQueueFull429(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	mkRun := func(name string, start chan struct{}) func() (*jobResult, error) {
		return func() (*jobResult, error) {
			if start != nil {
				close(start)
			}
			<-block
			return &jobResult{report: []byte(name), summary: name}, nil
		}
	}

	j1, err := s.mgr.submit(KindSubject, "fake", "key-1", 0, jobTelemetry{}, mkRun("one", started))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker owns job 1 now
	j2, err := s.mgr.submit(KindSubject, "fake", "key-2", 0, jobTelemetry{}, mkRun("two", nil))
	if err != nil {
		t.Fatal(err) // queue has exactly one free slot
	}

	resp, err := http.Post(c.Base+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"MR-3274"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	if got := s.Recorder().Counters()["serve.rejected.queue_full"]; got != 1 {
		t.Errorf("serve.rejected.queue_full = %d, want 1", got)
	}

	close(block)
	for _, j := range []*job{j1, j2} {
		select {
		case <-j.done:
		case <-time.After(10 * time.Second):
			t.Fatalf("job %s did not finish after unblocking", j.id)
		}
	}
}

// TestCancelReleasesAdmission parks one job on most of the memory budget,
// lets a second job block in admission, cancels it, and asserts the worker
// slot is usable again while the first job still holds its budget.
func TestCancelReleasesAdmission(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 8, MemBudget: 100})
	block := make(chan struct{})
	started := make(chan struct{})

	j1, err := s.mgr.submit(KindSubject, "fake", "adm-1", 80, jobTelemetry{}, func() (*jobResult, error) {
		close(started)
		<-block
		return &jobResult{report: []byte("one"), summary: "one"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	j2, err := s.mgr.submit(KindSubject, "fake", "adm-2", 80, jobTelemetry{}, func() (*jobResult, error) {
		return &jobResult{report: []byte("two"), summary: "two"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the second worker is parked inside memGate.acquire.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mgr.mem.mu.Lock()
		waiting := len(s.mgr.mem.waiters)
		s.mgr.mem.mu.Unlock()
		if waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 2 never blocked in memory admission")
		}
		time.Sleep(time.Millisecond)
	}

	if err := s.mgr.cancelJob(j2.id); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j2.done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled job did not reach a terminal state")
	}
	st := j2.status()
	if st.State != StateCanceled {
		t.Fatalf("job 2 state = %s, want canceled", st.State)
	}
	if !strings.Contains(st.Error, "memory admission") {
		t.Errorf("job 2 error = %q, want admission-wait cancellation", st.Error)
	}
	if got := s.mgr.mem.inUse(); got != 80 {
		t.Errorf("mem in use after cancel = %d, want 80 (only job 1)", got)
	}

	// The freed worker slot runs a small job to completion even though job 1
	// still holds 80 of 100 bytes.
	j3, err := s.mgr.submit(KindSubject, "fake", "adm-3", 10, jobTelemetry{}, func() (*jobResult, error) {
		return &jobResult{report: []byte("three"), summary: "three"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j3.done:
	case <-time.After(10 * time.Second):
		t.Fatal("small job did not run: canceled job leaked its worker slot")
	}
	if st := j3.status(); st.State != StateDone {
		t.Fatalf("job 3 state = %s, want done", st.State)
	}

	close(block)
	<-j1.done
	// Job 1's budget is returned by the worker after its terminal state.
	for end := time.Now().Add(5 * time.Second); s.mgr.mem.inUse() != 0; {
		if time.Now().After(end) {
			t.Fatalf("mem in use = %d after all jobs finished, want 0", s.mgr.mem.inUse())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentClients drives 16 concurrent submissions (mixed subject and
// uploaded-trace jobs) and asserts every served report is byte-identical to
// the corresponding local run.
func TestConcurrentClients(t *testing.T) {
	_, c := newTestServer(t, Config{QueueDepth: 32})
	wantMR := localSubjectReport(t, "MR-3274", nil, JobOptions{})
	wantZK := localSubjectReport(t, "ZK-1144", nil, JobOptions{})
	raw, wantTrace := localTraceBytes(t, "HB-4539")

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var (
				st   *JobStatus
				err  error
				want string
			)
			switch i % 3 {
			case 0:
				st, err = c.SubmitTrace(bytes.NewReader(raw), JobOptions{})
				want = wantTrace
			case 1:
				st, err = c.SubmitSubject(SubjectRequest{Bench: "MR-3274"})
				want = wantMR
			default:
				st, err = c.SubmitSubject(SubjectRequest{Bench: "ZK-1144"})
				want = wantZK
			}
			if err != nil {
				errs <- fmt.Errorf("client %d: submit: %w", i, err)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			fin, err := c.Wait(ctx, st.ID)
			if err != nil {
				errs <- fmt.Errorf("client %d: wait: %w", i, err)
				return
			}
			if fin.State != StateDone {
				errs <- fmt.Errorf("client %d: job %s %s: %s", i, fin.ID, fin.State, fin.Error)
				return
			}
			got, err := c.Report(st.ID)
			if err != nil {
				errs <- fmt.Errorf("client %d: report: %w", i, err)
				return
			}
			if string(got) != want {
				errs <- fmt.Errorf("client %d: served report diverges from local run", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestShutdownDrains verifies graceful drain: accepted jobs finish, new
// submissions are refused with 503, health reports draining.
func TestShutdownDrains(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})
	started := make(chan struct{})
	j, err := s.mgr.submit(KindSubject, "fake", "drain-1", 0, jobTelemetry{}, func() (*jobResult, error) {
		close(started)
		time.Sleep(50 * time.Millisecond)
		return &jobResult{report: []byte("drained"), summary: "drained"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx)

	select {
	case <-j.done:
	default:
		t.Error("shutdown returned before the accepted job finished")
	}
	if st := j.status(); st.State != StateDone {
		t.Errorf("drained job state = %s, want done", st.State)
	}

	if _, err := c.SubmitSubject(SubjectRequest{Bench: "MR-3274"}); err == nil {
		t.Error("submission after shutdown succeeded, want 503")
	} else {
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
			t.Errorf("submission after shutdown: %v, want HTTP 503", err)
		}
	}
	resp, err := http.Get(c.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
}

// TestBadInputs covers rejection paths: malformed trace uploads, unknown
// benchmarks, unknown option fields, oversized bodies, premature report
// fetches and unknown job IDs.
func TestBadInputs(t *testing.T) {
	raw, _ := localTraceBytes(t, "HB-4539")
	// The limit admits the valid trace but not the padded upload below.
	s, c := newTestServer(t, Config{Workers: 1, MaxBodyBytes: int64(len(raw)) + 1024})

	resp, err := http.Post(c.Base+"/v1/jobs", "application/octet-stream",
		strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage trace upload: %d, want 400", resp.StatusCode)
	}

	if _, err := c.SubmitSubject(SubjectRequest{Bench: "NO-SUCH"}); err == nil {
		t.Error("unknown benchmark accepted")
	}

	resp, err = http.Post(c.Base+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"MR-3274","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown JSON field: %d, want 400", resp.StatusCode)
	}

	// A valid trace with oversized trailing padding: decoding succeeds, but
	// hashing the remainder trips the body limit.
	padded := append(append([]byte(nil), raw...), make([]byte, 4<<10)...)
	resp, err = http.Post(c.Base+"/v1/jobs", "application/octet-stream",
		bytes.NewReader(padded))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", resp.StatusCode)
	}

	if _, err := c.Report("j999999"); err == nil {
		t.Error("report for unknown job succeeded")
	}
	resp, err = http.Get(c.Base + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", resp.StatusCode)
	}

	// A queued-but-unfinished job's report is 409.
	block := make(chan struct{})
	defer close(block)
	j, err := s.mgr.submit(KindSubject, "fake", "unfinished", 0, jobTelemetry{}, func() (*jobResult, error) {
		<-block
		return &jobResult{report: []byte("x"), summary: "x"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(c.Base + "/v1/jobs/" + j.id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("unfinished report fetch: %d, want 409", resp.StatusCode)
	}
}

// TestListOrder checks GET /v1/jobs returns submission order.
func TestListOrder(t *testing.T) {
	_, c := newTestServer(t, Config{})
	st1, err := c.SubmitSubject(SubjectRequest{Bench: "ZK-1144"})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.SubmitSubject(SubjectRequest{Bench: "MR-3274"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, st1.ID)
	waitDone(t, c, st2.ID)
	list, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != st1.ID || list[1].ID != st2.ID {
		t.Errorf("list order = %+v, want [%s %s]", list, st1.ID, st2.ID)
	}
}
