// Package bitset provides fixed-capacity bit sets used by the
// happens-before reachability analysis (DCatch §3.2.2): every vertex of the
// HB graph carries a bit array of the vertices that can reach it, turning
// "does a happen before b" into a constant-time bit lookup.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity zero; use New to allocate a usable set.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set capable of holding bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Cap returns the capacity the set was created with.
func (s *Set) Cap() int { return s.n }

// Bytes returns the memory footprint of the set's payload in bytes.
func (s *Set) Bytes() int { return len(s.words) * 8 }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// HasUnchecked reports whether bit i is set, skipping the bounds check. The
// caller must guarantee 0 <= i < Cap(); used by hot query loops that have
// already validated their indices (hb.Graph.ConcurrentOrdered).
func (s *Set) HasUnchecked(i int) bool {
	return s.words[i>>6]&(1<<uint(i&(wordBits-1))) != 0
}

// Or sets s to the union of s and t. The sets must have equal capacity.
func (s *Set) Or(t *Set) {
	if t == nil {
		return
	}
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: Or capacity mismatch %d != %d", s.n, t.n))
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// OrAll sets s to the union of s and every set in ts, in one word-major
// pass: for each word index the sources are folded into a register before a
// single store, which touches s.words once instead of len(ts) times. All
// sets must be non-nil and have equal capacity.
func (s *Set) OrAll(ts []*Set) {
	for _, t := range ts {
		if t.n != s.n {
			panic(fmt.Sprintf("bitset: OrAll capacity mismatch %d != %d", s.n, t.n))
		}
	}
	switch len(ts) {
	case 0:
		return
	case 1:
		s.Or(ts[0])
		return
	}
	for i := range s.words {
		w := s.words[i]
		for _, t := range ts {
			w |= t.words[i]
		}
		s.words[i] = w
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Clear removes all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Equal reports whether s and t hold exactly the same bits and capacity.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// String renders the set as a sorted list of indices, for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
