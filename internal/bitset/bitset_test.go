package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	s := New(130)
	if s.Cap() != 130 {
		t.Fatalf("Cap = %d, want 130", s.Cap())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("bit %d not set after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 7 {
		t.Fatalf("Remove(64) failed: has=%v count=%d", s.Has(64), s.Count())
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("Count = %d after double Add, want 1", s.Count())
	}
}

func TestOr(t *testing.T) {
	a, b := New(100), New(100)
	a.Add(1)
	a.Add(99)
	b.Add(2)
	b.Add(99)
	a.Or(b)
	for _, i := range []int{1, 2, 99} {
		if !a.Has(i) {
			t.Errorf("union missing bit %d", i)
		}
	}
	if a.Count() != 3 {
		t.Errorf("union Count = %d, want 3", a.Count())
	}
	// Or with nil is a no-op.
	a.Or(nil)
	if a.Count() != 3 {
		t.Errorf("Or(nil) changed set")
	}
}

func TestOrCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched capacity did not panic")
		}
	}()
	New(10).Or(New(20))
}

func TestOutOfRangePanics(t *testing.T) {
	for _, i := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) on cap-10 set did not panic", i)
				}
			}()
			New(10).Add(i)
		}()
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Add(5)
	b := a.Clone()
	b.Add(6)
	if a.Has(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !b.Has(5) {
		t.Fatal("Clone lost bit 5")
	}
}

func TestClearAndEqual(t *testing.T) {
	a := New(77)
	a.Add(0)
	a.Add(76)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not Equal to original")
	}
	a.Clear()
	if a.Count() != 0 {
		t.Fatalf("Count = %d after Clear", a.Count())
	}
	if a.Equal(b) {
		t.Fatal("cleared set Equal to non-empty set")
	}
	if a.Equal(New(76)) {
		t.Fatal("sets of different capacity reported Equal")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{0, 7, 63, 64, 100, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want %v", got, want)
		}
	}
}

func TestHasUnchecked(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		s.Add(i)
	}
	for i := 0; i < 130; i++ {
		if s.Has(i) != s.HasUnchecked(i) {
			t.Fatalf("HasUnchecked disagrees with Has at %d", i)
		}
	}
}

func TestOrAll(t *testing.T) {
	mk := func(bits ...int) *Set {
		s := New(200)
		for _, b := range bits {
			s.Add(b)
		}
		return s
	}
	s := mk(1)
	s.OrAll([]*Set{mk(2, 64), mk(3, 199), mk()})
	want := mk(1, 2, 3, 64, 199)
	if !s.Equal(want) {
		t.Fatalf("OrAll = %s, want %s", s, want)
	}
	// Degenerate arities.
	s2 := mk(5)
	s2.OrAll(nil)
	if !s2.Equal(mk(5)) {
		t.Fatal("OrAll(nil) mutated the set")
	}
	s2.OrAll([]*Set{mk(6)})
	if !s2.Equal(mk(5, 6)) {
		t.Fatal("OrAll single-source wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch not detected")
		}
	}()
	s2.OrAll([]*Set{New(10)})
}

func TestString(t *testing.T) {
	s := New(10)
	s.Add(2)
	s.Add(8)
	if got := s.String(); got != "{2 8}" {
		t.Fatalf("String = %q, want {2 8}", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String = %q, want {}", got)
	}
}

// Property: a Set behaves like a map[int]bool under a random sequence of
// Add/Remove operations.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []int16, seed int64) bool {
		const n = 300
		s := New(n)
		ref := map[int]bool{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			i := int(uint16(op)) % n
			if rng.Intn(2) == 0 {
				s.Add(i)
				ref[i] = true
			} else {
				s.Remove(i)
				delete(ref, i)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Has(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Or is commutative and idempotent in effect.
func TestQuickOrCommutative(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a1, b1 := New(n), New(n)
		a2, b2 := New(n), New(n)
		for _, x := range xs {
			a1.Add(int(x))
			a2.Add(int(x))
		}
		for _, y := range ys {
			b1.Add(int(y))
			b2.Add(int(y))
		}
		a1.Or(b1) // a ∪ b
		b2.Or(a2) // b ∪ a
		if !a1.Equal(b2) {
			return false
		}
		u := a1.Clone()
		u.Or(b1)
		return u.Equal(a1) // (a∪b)∪b == a∪b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytes(t *testing.T) {
	if got := New(1).Bytes(); got != 8 {
		t.Errorf("Bytes(cap 1) = %d, want 8", got)
	}
	if got := New(65).Bytes(); got != 16 {
		t.Errorf("Bytes(cap 65) = %d, want 16", got)
	}
	if got := New(0).Bytes(); got != 0 {
		t.Errorf("Bytes(cap 0) = %d, want 0", got)
	}
}

func BenchmarkOr4096(b *testing.B) {
	x, y := New(4096), New(4096)
	for i := 0; i < 4096; i += 3 {
		y.Add(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}
