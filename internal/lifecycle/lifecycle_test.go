package lifecycle

import (
	"sync"
	"testing"
	"time"
)

func TestEnterExitClose(t *testing.T) {
	var d Drainer
	if !d.Enter() {
		t.Fatal("Enter refused on open drainer")
	}
	if got := d.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	done := make(chan bool, 1)
	go func() { done <- d.Close(time.Second) }()
	// Close must be waiting on the in-flight unit.
	time.Sleep(10 * time.Millisecond)
	if !d.Closing() {
		t.Fatal("Closing() false after Close started")
	}
	if d.Enter() {
		t.Fatal("Enter admitted work while closing")
	}
	d.Exit()
	if !<-done {
		t.Fatal("Close reported timeout despite drain")
	}
}

func TestCloseTimeout(t *testing.T) {
	var d Drainer
	d.Enter()
	start := time.Now()
	if d.Close(20 * time.Millisecond) {
		t.Fatal("Close reported drained with work in flight")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("Close returned before the timeout")
	}
	d.Exit() // late exit must not panic
}

func TestCloseIdleIsImmediate(t *testing.T) {
	var d Drainer
	if !d.Close(0) {
		t.Fatal("Close on idle drainer reported timeout")
	}
	if d.Enter() {
		t.Fatal("Enter admitted work after Close")
	}
}

func TestConcurrentWorkers(t *testing.T) {
	var d Drainer
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		if !d.Enter() {
			t.Fatal("Enter refused")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Millisecond)
			d.Exit()
		}()
	}
	if !d.Close(5 * time.Second) {
		t.Fatal("Close timed out with exiting workers")
	}
	wg.Wait()
}
