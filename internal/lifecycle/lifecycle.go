// Package lifecycle provides the graceful-shutdown primitive shared by the
// repo's long-running servers: the detection service (internal/serve) and
// the triggering module's TCP message controller (internal/trigger). Both
// need the same discipline on SIGTERM/Close — stop admitting new work, let
// in-flight work finish, and bound how long the drain may take — so it
// lives here once instead of as two ad-hoc implementations.
//
// The package sits below every other internal package (it imports nothing
// from the module) because internal/core depends on internal/trigger while
// internal/serve depends on internal/core: a helper inside internal/serve
// could never be shared with the trigger server without a cycle.
package lifecycle

import (
	"sync"
	"time"
)

// Drainer tracks in-flight units of work for a long-running server. Work
// enters with Enter (refused once shutdown has begun) and leaves with Exit;
// Close flips the drainer into the closing state and waits, up to a
// timeout, for the in-flight count to reach zero.
//
// The zero value is ready to use.
type Drainer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	closed bool
}

// condLocked lazily initializes the condition variable; mu must be held.
func (d *Drainer) condLocked() *sync.Cond {
	if d.cond == nil {
		d.cond = sync.NewCond(&d.mu)
	}
	return d.cond
}

// Enter registers one in-flight unit of work. It returns false — and
// registers nothing — once Close has been called; the caller should refuse
// the work.
func (d *Drainer) Enter() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.n++
	return true
}

// Exit retires one unit of work previously admitted by Enter.
func (d *Drainer) Exit() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n--
	if d.n < 0 {
		panic("lifecycle: Exit without matching Enter")
	}
	if d.n == 0 {
		d.condLocked().Broadcast()
	}
}

// Closing reports whether Close has been called.
func (d *Drainer) Closing() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// InFlight returns the current number of admitted, un-exited units.
func (d *Drainer) InFlight() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Close stops further Enters and waits for in-flight work to drain. It
// returns true if the count reached zero, false if the timeout elapsed
// first (timeout <= 0 waits forever). Close is idempotent; concurrent and
// repeated calls all wait for the same drain.
func (d *Drainer) Close(timeout time.Duration) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	if d.n == 0 {
		return true
	}
	var expired bool
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() {
			d.mu.Lock()
			expired = true
			d.condLocked().Broadcast()
			d.mu.Unlock()
		})
		defer t.Stop()
	}
	for d.n > 0 && !expired {
		d.condLocked().Wait()
	}
	return d.n == 0
}
