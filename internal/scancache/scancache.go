// Package scancache memoizes per-window detection scans across uploads,
// nodes, and reruns.
//
// The unit of caching is one window's detect.WindowScan — the
// scanned-but-unmerged candidate map that batch chunking, the streaming
// eager mode, and the cluster RPC all already produce and fold through
// ChunkMerger.Merge. A window scan is a pure function of the window's
// record content and the wire-expressible analysis options (reach backend,
// scan mode, group cap, memory budget): scan parallelism never changes the
// canonical encoding, and observability never changes results. So the
// cache key is
//
//	sha256("dcws|" version "|" reach "|" scan "|" maxGroup "|" memBudget "|" window-records)
//
// where the records are hashed field by field (Spec.KeyTrace) rather than
// through trace.Trace.Encode — the same injectivity without the string
// table, so probing a 50k-record window costs single-digit milliseconds.
// The value is the canonical DCWS encoding of the scan — the same
// versioned binary format the cluster RPC ships, reused verbatim so a
// cached reply is indistinguishable from a freshly computed one by
// construction. Values are stored and returned as bytes, never as live
// WindowScan objects: ChunkMerger.Merge rebases record indices in place,
// so every consumer must decode its own copy.
//
// Options outside the wire-expressible subset (HB rule ablations,
// LoopReads hints, report suppression) change scan results without being
// part of the key, so SpecFor refuses them and callers bypass the cache —
// exactly mirroring what cluster.NewCoordinator rejects for remote
// execution.
//
// The in-memory tier is a byte-bounded LRU; an optional disk tier (Dir)
// spills entries content-addressed under sharded directories with atomic
// write+rename and its own size budget. Every disk load verifies the
// envelope's integrity checksum, so a corrupt or truncated cache file —
// even a single flipped payload byte the structural DCWS decoder would
// wave through — degrades to a miss, never a wrong report. Consumers that
// decode a payload and fail call Discard as a second line of defense.
package scancache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"dcatch/internal/detect"
	"dcatch/internal/hb"
	"dcatch/internal/obs"
	"dcatch/internal/trace"
)

// Key is the content address of one window scan.
type Key [32]byte

// String renders the key as lowercase hex (used for disk file names).
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// Spec is the wire-expressible option subset that, together with the
// window's record bytes, determines a scan result. It deliberately matches
// cluster.ScanRequest field for field: the coordinator and a worker that
// derive Specs from their own typed configs land on identical keys.
type Spec struct {
	Reach     string // hb.Backend.String(): "dense" | "chain" | "auto"
	Scan      string // detect.ScanMode.String(): "auto" | "epoch" | "interval" | "quadratic"
	MaxGroup  int
	MemBudget int64
}

// SpecFor derives the cache spec from typed analysis options. ok is false
// when the options carry state the key cannot express — HB ablations,
// LoopReads hints, or pull-report suppression — in which case the caller
// must scan uncached.
func SpecFor(hcfg hb.Config, dopts detect.Options) (Spec, bool) {
	if hcfg.DisableEvent || hcfg.DisableRPC || hcfg.DisableSocket || hcfg.DisablePush ||
		len(hcfg.LoopReads) > 0 || dopts.SuppressPull {
		return Spec{}, false
	}
	return Spec{
		Reach:     hcfg.ReachBackend.String(),
		Scan:      dopts.Scan.String(),
		MaxGroup:  dopts.MaxGroup,
		MemBudget: hcfg.MemBudget,
	}, true
}

// KeyTrace hashes the spec, the DCWS format version, and the window's
// record content into the cache key. Records are hashed field by field with
// fixed-width little-endian encoding and length-prefixed strings — the same
// injectivity as hashing trace.Trace.Encode output, without building the
// string-intern table, so a 50k-record window keys in single-digit
// milliseconds instead of tens. Every field the HB build or the scan can
// observe is included: Program and the (sorted) queue-consumer table shape
// event rules, and every Rec field shapes edges or candidate identity.
// Encode∘Decode preserves all hashed fields, so a worker keying the decoded
// request body lands on the coordinator's key.
func (s Spec) KeyTrace(sub *trace.Trace) Key {
	h := sha256.New()
	fmt.Fprintf(h, "dcws|%d|%s|%s|%d|%d|", detect.WindowScanVersion, s.Reach, s.Scan, s.MaxGroup, s.MemBudget)
	buf := make([]byte, 0, 1<<16)
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	str := func(s string) {
		u64(uint64(len(s)))
		buf = append(buf, s...)
	}
	str(sub.Program)
	qs := make([]string, 0, len(sub.QueueConsumers))
	for q := range sub.QueueConsumers {
		qs = append(qs, q)
	}
	sort.Strings(qs)
	u64(uint64(len(qs)))
	for _, q := range qs {
		str(q)
		u64(uint64(uint32(sub.QueueConsumers[q])))
	}
	u64(uint64(len(sub.Recs)))
	for i := range sub.Recs {
		r := &sub.Recs[i]
		u64(uint64(r.Kind)<<32 | uint64(r.CtxKind))
		u64(r.Seq)
		str(r.Node)
		u64(uint64(uint32(r.Thread))<<32 | uint64(uint32(r.Ctx)))
		str(r.Obj)
		u64(r.Op)
		u64(r.WriterSeq)
		u64(uint64(uint32(r.StaticID)))
		u64(uint64(len(r.Stack)))
		for _, s := range r.Stack {
			u64(uint64(uint32(s)))
		}
		str(r.Queue)
		if len(buf) > 1<<16-512 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	var k Key
	h.Sum(k[:0])
	return k
}

// Entry is one cached window scan: the canonical DCWS payload plus the
// build metadata a hit must reproduce (peak-memory stats and the resolved
// backend label reported alongside reports, and the worker's record-count
// reply header).
type Entry struct {
	Payload  []byte // canonical detect.WindowScan encoding
	Backend  string // resolved hb backend of the window build
	MemBytes int64  // reachability-closure footprint of the window build
	Records  int    // records in the window
}

func (e Entry) cost() int64 {
	return int64(len(e.Payload)) + int64(len(e.Backend)) + entryOverhead
}

// entryOverhead approximates per-entry bookkeeping (key copy, list node,
// map slot) so tiny entries still consume budget.
const entryOverhead = 128

// Config sizes a Cache.
type Config struct {
	// MaxBytes bounds the in-memory tier (payload bytes + per-entry
	// overhead). 0 means DefaultMaxBytes.
	MaxBytes int64
	// Dir, when non-empty, enables the persistent tier: entries spill to
	// Dir/<hex[:2]>/<hex> with atomic write+rename. The directory is
	// created if missing and re-indexed on open.
	Dir string
	// DiskMaxBytes bounds the persistent tier by file size. 0 means
	// DefaultDiskMaxBytes. Ignored when Dir is empty.
	DiskMaxBytes int64
	// Obs receives hit/miss/eviction counters (nil-safe).
	Obs *obs.Recorder
}

// Defaults for unset Config fields.
const (
	DefaultMaxBytes     = 256 << 20 // 256 MiB in memory
	DefaultDiskMaxBytes = 1 << 30   // 1 GiB on disk
)

// Cache is a bounded, concurrency-safe, content-addressed window-scan
// cache with an in-memory LRU tier and an optional persistent tier.
type Cache struct {
	rec      *obs.Recorder
	maxBytes int64

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
	bytes int64

	disk *diskTier // nil when no Dir configured
}

type memEntry struct {
	key Key
	ent Entry
}

// New opens a cache. It fails only when a persistent Dir is configured and
// cannot be created or indexed.
func New(cfg Config) (*Cache, error) {
	c := &Cache{
		rec:      cfg.Obs,
		maxBytes: cfg.MaxBytes,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
	}
	if c.maxBytes <= 0 {
		c.maxBytes = DefaultMaxBytes
	}
	if cfg.Dir != "" {
		d, err := openDiskTier(cfg.Dir, cfg.DiskMaxBytes, cfg.Obs)
		if err != nil {
			return nil, err
		}
		c.disk = d
	}
	return c, nil
}

// Get returns the entry for key. A memory hit promotes the entry to the
// LRU front; a disk hit verifies the envelope's integrity checksum and
// promotes into memory. Any disk corruption is removed and reported as a
// miss.
func (c *Cache) Get(key Key) (Entry, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*memEntry).ent
		c.mu.Unlock()
		c.rec.Count("scancache.hits", 1)
		return ent, true
	}
	c.mu.Unlock()
	if c.disk != nil {
		if ent, ok := c.disk.get(key); ok {
			c.insert(key, ent)
			c.rec.Count("scancache.hits", 1)
			c.rec.Count("scancache.disk_hits", 1)
			return ent, true
		}
	}
	c.rec.Count("scancache.misses", 1)
	return Entry{}, false
}

// Discard removes key from both tiers. Consumers call it when a cached
// payload fails the DCWS decoder — the envelope checksum makes that
// unreachable for disk corruption, but a decode failure from any cause must
// not survive to poison later runs.
func (c *Cache) Discard(key Key) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		me := el.Value.(*memEntry)
		c.ll.Remove(el)
		delete(c.items, key)
		c.bytes -= me.ent.cost()
	}
	c.mu.Unlock()
	if c.disk != nil {
		c.disk.discard(key)
	}
	c.rec.Count("scancache.corrupt", 1)
}

// Put stores an entry under key. Entries are content-addressed, so racing
// writers store identical bytes and last-write-wins is harmless.
func (c *Cache) Put(key Key, ent Entry) {
	if len(ent.Payload) == 0 {
		return
	}
	c.insert(key, ent)
	if c.disk != nil {
		c.disk.put(key, ent)
	}
}

func (c *Cache) insert(key Key, ent Entry) {
	cost := ent.cost()
	if cost > c.maxBytes {
		return // never evict the whole cache for one oversized window
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		old := el.Value.(*memEntry)
		c.bytes += cost - old.ent.cost()
		old.ent = ent
	} else {
		c.items[key] = c.ll.PushFront(&memEntry{key: key, ent: ent})
		c.bytes += cost
	}
	var evicted int64
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		me := back.Value.(*memEntry)
		c.ll.Remove(back)
		delete(c.items, me.key)
		c.bytes -= me.ent.cost()
		evicted++
	}
	c.mu.Unlock()
	if evicted > 0 {
		c.rec.Count("scancache.evictions", evicted)
	}
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the in-memory tier's current footprint.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// MaxBytes reports the in-memory budget.
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

// DiskBytes reports the persistent tier's current footprint (0 when no
// Dir is configured).
func (c *Cache) DiskBytes() int64 {
	if c.disk == nil {
		return 0
	}
	return c.disk.bytesUsed()
}

// DiskMaxBytes reports the persistent tier's budget (0 when disabled).
func (c *Cache) DiskMaxBytes() int64 {
	if c.disk == nil {
		return 0
	}
	return c.disk.maxBytes
}

// Persistent reports whether a disk tier is configured.
func (c *Cache) Persistent() bool { return c.disk != nil }
