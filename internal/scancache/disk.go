package scancache

import (
	"container/list"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dcatch/internal/detect"
	"dcatch/internal/obs"
)

// Persistent cache file format (version 1):
//
//	magic "DCSC" | u8 version | u32le crc32c over the rest of the file
//	uvarint memBytes | uvarint records | uvarint len(backend) | backend
//	payload — canonical DCWS bytes, to end of file
//
// The checksum makes disk loads both cheap and airtight: verifying it
// costs microseconds where a structural DCWS re-decode costs milliseconds,
// and it rejects corruption the structural decoder cannot see (a flipped
// byte inside an interned string decodes fine but changes the report). Bit
// rot, truncation, or a hostile edit fails the checksum, the file is
// deleted, and the window is simply rescanned.

const (
	diskMagic   = "DCSC"
	diskVersion = 1

	// maxBackendLen bounds the backend label in an envelope; real labels
	// are "dense"/"chain".
	maxBackendLen = 32
)

// crcTable is Castagnoli, hardware-accelerated on every platform we run on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// headerLen is the fixed prefix before the checksummed region.
const headerLen = len(diskMagic) + 1 + 4

// encodeEntry renders the on-disk envelope for ent.
func encodeEntry(ent Entry) []byte {
	buf := make([]byte, 0, headerLen+3*binary.MaxVarintLen64+len(ent.Backend)+len(ent.Payload))
	buf = append(buf, diskMagic...)
	buf = append(buf, diskVersion)
	buf = append(buf, 0, 0, 0, 0) // crc placeholder
	buf = binary.AppendUvarint(buf, uint64(ent.MemBytes))
	buf = binary.AppendUvarint(buf, uint64(ent.Records))
	buf = binary.AppendUvarint(buf, uint64(len(ent.Backend)))
	buf = append(buf, ent.Backend...)
	buf = append(buf, ent.Payload...)
	binary.LittleEndian.PutUint32(buf[headerLen-4:], crc32.Checksum(buf[headerLen:], crcTable))
	return buf
}

// decodeEnvelope parses an on-disk envelope and verifies its checksum. It
// does not decode the DCWS payload — the checksum already guarantees the
// bytes are exactly what encodeEntry wrote, and Put never stores an empty
// or undecodable payload.
func decodeEnvelope(data []byte) (Entry, error) {
	if len(data) < headerLen {
		return Entry{}, fmt.Errorf("scancache: short envelope (%d bytes)", len(data))
	}
	if string(data[:len(diskMagic)]) != diskMagic {
		return Entry{}, fmt.Errorf("scancache: bad magic %q", data[:len(diskMagic)])
	}
	if v := data[len(diskMagic)]; v != diskVersion {
		return Entry{}, fmt.Errorf("scancache: unsupported version %d", v)
	}
	want := binary.LittleEndian.Uint32(data[headerLen-4 : headerLen])
	if got := crc32.Checksum(data[headerLen:], crcTable); got != want {
		return Entry{}, fmt.Errorf("scancache: checksum mismatch (%08x != %08x)", got, want)
	}
	rest := data[headerLen:]
	next := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("scancache: bad %s varint", what)
		}
		rest = rest[n:]
		return v, nil
	}
	mem, err := next("memBytes")
	if err != nil {
		return Entry{}, err
	}
	if mem > 1<<62 {
		return Entry{}, fmt.Errorf("scancache: absurd memBytes %d", mem)
	}
	recs, err := next("records")
	if err != nil {
		return Entry{}, err
	}
	if recs > 1<<40 {
		return Entry{}, fmt.Errorf("scancache: absurd record count %d", recs)
	}
	blen, err := next("backend length")
	if err != nil {
		return Entry{}, err
	}
	if blen > maxBackendLen || blen > uint64(len(rest)) {
		return Entry{}, fmt.Errorf("scancache: bad backend length %d", blen)
	}
	backend := string(rest[:blen])
	payload := rest[blen:]
	if len(payload) == 0 {
		return Entry{}, fmt.Errorf("scancache: empty payload")
	}
	return Entry{
		Payload:  append([]byte(nil), payload...),
		Backend:  backend,
		MemBytes: int64(mem),
		Records:  int(recs),
	}, nil
}

// DecodeEntry parses and fully validates an on-disk envelope: the checksum
// plus a hardened decode of the DCWS payload. Exported for the fuzz
// harness: any input must either round-trip or error — never panic, never
// yield a payload the decoder rejects.
func DecodeEntry(data []byte) (Entry, error) {
	ent, err := decodeEnvelope(data)
	if err != nil {
		return Entry{}, err
	}
	if _, err := detect.DecodeWindowScan(ent.Payload); err != nil {
		return Entry{}, fmt.Errorf("scancache: payload: %w", err)
	}
	return ent, nil
}

// diskTier is the persistent spill: one file per entry under
// dir/<hex[:2]>/<hex>, LRU-evicted by total file size. File I/O runs under
// the tier mutex — entries are a few KB and a window scan costs
// milliseconds, so serializing loads is simpler than per-key locking and
// still far off the critical path.
type diskTier struct {
	dir      string
	maxBytes int64
	rec      *obs.Recorder

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
	bytes int64
}

type diskEntry struct {
	key  Key
	size int64
}

func openDiskTier(dir string, maxBytes int64, rec *obs.Recorder) (*diskTier, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scancache: create dir: %w", err)
	}
	d := &diskTier{
		dir:      dir,
		maxBytes: maxBytes,
		rec:      rec,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
	}
	if err := d.index(); err != nil {
		return nil, err
	}
	return d, nil
}

// index rebuilds the LRU from the directory: surviving files ordered by
// mtime (a best-effort recency signal across restarts), stray temp files
// swept, budget re-enforced.
func (d *diskTier) index() error {
	type found struct {
		de diskEntry
		at time.Time
	}
	var all []found
	shards, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("scancache: index: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(d.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			path := filepath.Join(d.dir, sh.Name(), f.Name())
			raw, err := hex.DecodeString(f.Name())
			if err != nil || len(raw) != len(Key{}) {
				os.Remove(path) // stray temp or foreign file
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			var k Key
			copy(k[:], raw)
			all = append(all, found{diskEntry{key: k, size: info.Size()}, info.ModTime()})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].at.Before(all[j].at) })
	for _, f := range all { // oldest pushed first ends up at the back
		d.items[f.de.key] = d.ll.PushFront(&diskEntry{key: f.de.key, size: f.de.size})
		d.bytes += f.de.size
	}
	d.evictLocked()
	return nil
}

func (d *diskTier) path(key Key) string {
	hexKey := key.String()
	return filepath.Join(d.dir, hexKey[:2], hexKey)
}

func (d *diskTier) get(key Key) (Entry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok := d.items[key]
	if !ok {
		return Entry{}, false
	}
	data, err := os.ReadFile(d.path(key))
	if err == nil {
		var ent Entry
		if ent, err = decodeEnvelope(data); err == nil {
			d.ll.MoveToFront(el)
			return ent, true
		}
	}
	// Unreadable or corrupt: drop the file and report a miss. The window
	// gets rescanned and the entry rewritten.
	d.removeLocked(el)
	d.rec.Count("scancache.corrupt", 1)
	return Entry{}, false
}

func (d *diskTier) put(key Key, ent Entry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.items[key]; ok {
		d.ll.MoveToFront(el) // content-addressed: existing bytes are the bytes
		return
	}
	data := encodeEntry(ent)
	if int64(len(data)) > d.maxBytes {
		return
	}
	final := d.path(key)
	shard := filepath.Dir(final)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return // disk trouble must never fail the analysis
	}
	tmp, err := os.CreateTemp(shard, "put-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return
	}
	d.items[key] = d.ll.PushFront(&diskEntry{key: key, size: int64(len(data))})
	d.bytes += int64(len(data))
	d.evictLocked()
}

// discard removes key's entry and file if present.
func (d *diskTier) discard(key Key) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.items[key]; ok {
		d.removeLocked(el)
	}
}

func (d *diskTier) removeLocked(el *list.Element) {
	de := el.Value.(*diskEntry)
	d.ll.Remove(el)
	delete(d.items, de.key)
	d.bytes -= de.size
	os.Remove(d.path(de.key))
}

func (d *diskTier) evictLocked() {
	var evicted int64
	for d.bytes > d.maxBytes {
		back := d.ll.Back()
		if back == nil {
			break
		}
		d.removeLocked(back)
		evicted++
	}
	if evicted > 0 {
		d.rec.Count("scancache.disk_evictions", evicted)
	}
}

func (d *diskTier) bytesUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}
