package scancache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dcatch/internal/detect"
	"dcatch/internal/hb"
	"dcatch/internal/trace"
)

// segKey derives a distinct deterministic key for tests that exercise cache
// mechanics (LRU, disk, corruption) and only need key identity, not the
// KeyTrace derivation.
func segKey(s string) Key { return Key(sha256.Sum256([]byte(s))) }

func racyTrace(n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	c := trace.NewCollector("racy")
	for i := 0; i < n; i++ {
		th := int32(1 + rng.Intn(4))
		kind := trace.KMemRead
		if rng.Intn(2) == 0 {
			kind = trace.KMemWrite
		}
		c.Emit(trace.Rec{
			Node: "n", Thread: th, Ctx: th, CtxKind: trace.CtxRegular,
			Kind: kind, Obj: []string{"n/a", "n/b", "n/c"}[rng.Intn(3)],
			StaticID: int32(10 + rng.Intn(6)),
			Stack:    []int32{int32(100 + rng.Intn(5)), int32(rng.Intn(3))},
		})
	}
	return c.Trace()
}

// scanPayload builds one real window scan over tr and returns its entry.
func scanPayload(t *testing.T, tr *trace.Trace) Entry {
	t.Helper()
	g, err := hb.Build(tr, hb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ws := detect.ScanGraph(g, detect.Options{})
	return Entry{
		Payload:  ws.Encode(),
		Backend:  g.Backend().String(),
		MemBytes: g.MemBytes(),
		Records:  len(tr.Recs),
	}
}

func TestSpecForRejectsUnexpressibleOptions(t *testing.T) {
	if _, ok := SpecFor(hb.Config{}, detect.Options{}); !ok {
		t.Fatal("default options must be cacheable")
	}
	bad := []struct {
		name string
		h    hb.Config
		d    detect.Options
	}{
		{"DisableEvent", hb.Config{DisableEvent: true}, detect.Options{}},
		{"DisableRPC", hb.Config{DisableRPC: true}, detect.Options{}},
		{"DisableSocket", hb.Config{DisableSocket: true}, detect.Options{}},
		{"DisablePush", hb.Config{DisablePush: true}, detect.Options{}},
		{"LoopReads", hb.Config{LoopReads: map[int32][]int32{1: {2}}}, detect.Options{}},
		{"SuppressPull", hb.Config{}, detect.Options{SuppressPull: true}},
	}
	for _, tc := range bad {
		if _, ok := SpecFor(tc.h, tc.d); ok {
			t.Errorf("%s: options must bypass the cache", tc.name)
		}
	}
}

func TestSpecKeySensitivity(t *testing.T) {
	tr := racyTrace(50, 1)
	base := Spec{Reach: "dense", Scan: "auto"}
	k0 := base.KeyTrace(tr)
	variants := []Spec{
		{Reach: "chain", Scan: "auto"},
		{Reach: "dense", Scan: "epoch"},
		{Reach: "dense", Scan: "auto", MaxGroup: 5},
		{Reach: "dense", Scan: "auto", MemBudget: 1 << 20},
	}
	for _, v := range variants {
		if v.KeyTrace(tr) == k0 {
			t.Errorf("spec %+v collides with base", v)
		}
	}
	if base.KeyTrace(racyTrace(50, 2)) == k0 {
		t.Error("different windows collide")
	}
	if base.KeyTrace(tr) != k0 {
		t.Error("key not deterministic")
	}
	// Parallelism is deliberately absent from the spec: equal scans encode
	// equal bytes regardless of scan parallelism, so it must not split keys.

	// Every hashed field must move the key: a collision here would let a
	// window that scans differently be served a stale result.
	muts := []struct {
		name string
		f    func(*trace.Trace)
	}{
		{"Seq", func(c *trace.Trace) { c.Recs[10].Seq += 1000 }},
		{"Node", func(c *trace.Trace) { c.Recs[10].Node = "m" }},
		{"Thread", func(c *trace.Trace) { c.Recs[10].Thread += 100 }},
		{"Ctx", func(c *trace.Trace) { c.Recs[10].Ctx += 100 }},
		{"CtxKind", func(c *trace.Trace) { c.Recs[10].CtxKind = trace.CtxEvent }},
		{"Kind", func(c *trace.Trace) { c.Recs[10].Kind = trace.KLockAcq }},
		{"Obj", func(c *trace.Trace) { c.Recs[10].Obj = "n/zz" }},
		{"Op", func(c *trace.Trace) { c.Recs[10].Op += 7 }},
		{"WriterSeq", func(c *trace.Trace) { c.Recs[10].WriterSeq += 7 }},
		{"StaticID", func(c *trace.Trace) { c.Recs[10].StaticID += 1 << 20 }},
		{"Stack", func(c *trace.Trace) { c.Recs[10].Stack[0]++ }},
		{"StackLen", func(c *trace.Trace) { c.Recs[10].Stack = c.Recs[10].Stack[:1] }},
		{"Queue", func(c *trace.Trace) { c.Recs[10].Queue = "n/q" }},
		{"Program", func(c *trace.Trace) { c.Program = "other" }},
		{"QueueConsumers", func(c *trace.Trace) { c.QueueConsumers["n/q"] = 2 }},
		{"Truncate", func(c *trace.Trace) { c.Recs = c.Recs[:len(c.Recs)-1] }},
	}
	for _, m := range muts {
		cp := *tr
		cp.Recs = append([]trace.Rec(nil), tr.Recs...)
		cp.Recs[10].Stack = append([]int32(nil), tr.Recs[10].Stack...)
		cp.QueueConsumers = map[string]int{}
		for q, n := range tr.QueueConsumers {
			cp.QueueConsumers[q] = n
		}
		m.f(&cp)
		if base.KeyTrace(&cp) == k0 {
			t.Errorf("%s change did not move the key", m.name)
		}
	}

	// The key must survive the wire: a worker keying the decoded request
	// body must land on the key the coordinator derived from its window
	// sub-trace.
	dec, err := trace.Decode(bytes.NewReader(tr.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if base.KeyTrace(dec) != k0 {
		t.Error("key changed across encode/decode")
	}
}

func TestCacheMemoryHitAndEviction(t *testing.T) {
	c, err := New(Config{MaxBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ent := scanPayload(t, racyTrace(60, 3))
	key := segKey("segment")
	if _, ok := c.Get(key); ok {
		t.Fatal("hit before put")
	}
	c.Put(key, ent)
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if !bytes.Equal(got.Payload, ent.Payload) || got.Backend != ent.Backend ||
		got.MemBytes != ent.MemBytes || got.Records != ent.Records {
		t.Fatal("entry mutated by cache")
	}
	// Fill far past the budget; the cache must stay bounded and keep the
	// most recent entries.
	for i := 0; i < 200; i++ {
		c.Put(segKey(fmt.Sprintf("seg-%d", i)), ent)
	}
	if c.Bytes() > c.MaxBytes() {
		t.Fatalf("bytes %d exceed budget %d", c.Bytes(), c.MaxBytes())
	}
	if c.Len() == 0 {
		t.Fatal("cache emptied itself")
	}
	if _, ok := c.Get(segKey("seg-199")); !ok {
		t.Fatal("most recent entry evicted")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{MaxBytes: 1 << 20, Dir: dir, DiskMaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ent := scanPayload(t, racyTrace(40, 4))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := segKey(fmt.Sprintf("seg-%d", i%17))
				if got, ok := c.Get(key); ok {
					if !bytes.Equal(got.Payload, ent.Payload) {
						t.Error("payload corrupted under concurrency")
						return
					}
				} else {
					c.Put(key, ent)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDiskPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ent := scanPayload(t, racyTrace(60, 5))
	key := segKey("persist-me")

	c1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(key, ent)
	if c1.DiskBytes() == 0 {
		t.Fatal("nothing spilled to disk")
	}

	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if !bytes.Equal(got.Payload, ent.Payload) || got.Backend != ent.Backend ||
		got.MemBytes != ent.MemBytes || got.Records != ent.Records {
		t.Fatal("entry changed across reopen")
	}
	// Memory-promoted after the disk hit.
	if c2.Len() != 1 {
		t.Fatalf("disk hit not promoted to memory: len=%d", c2.Len())
	}
}

func TestDiskCorruptionDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	ent := scanPayload(t, racyTrace(60, 6))
	key := segKey("corrupt-me")

	c1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(key, ent)

	hexKey := key.String()
	path := filepath.Join(dir, hexKey[:2], hexKey)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)/2] ^= 0xFF; return b },
		func(b []byte) []byte { return b[:len(b)/2] },
		func(b []byte) []byte { return []byte("DCSCjunk") },
		func(b []byte) []byte { return nil },
	} {
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		c2, err := New(Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c2.Get(key); ok {
			t.Fatal("corrupt file served as a hit")
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatal("corrupt file not removed")
		}
		// Rescan-and-rewrite restores the entry for the next round.
		c2.Put(key, ent)
		if got, ok := c2.Get(key); !ok || !bytes.Equal(got.Payload, ent.Payload) {
			t.Fatal("rewrite after corruption failed")
		}
		data, err = os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiskEvictionBySize(t *testing.T) {
	dir := t.TempDir()
	ent := scanPayload(t, racyTrace(80, 7))
	one := int64(len(encodeEntry(ent)))
	c, err := New(Config{Dir: dir, DiskMaxBytes: 3 * one})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Put(segKey(fmt.Sprintf("seg-%d", i)), ent)
	}
	if got := c.DiskBytes(); got > 3*one {
		t.Fatalf("disk bytes %d exceed budget %d", got, 3*one)
	}
	// The newest key must have survived eviction.
	c2, err := New(Config{Dir: dir, DiskMaxBytes: 3 * one})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(segKey("seg-9")); !ok {
		t.Fatal("newest entry evicted from disk")
	}
}

func TestEntryEnvelopeRoundTrip(t *testing.T) {
	ent := scanPayload(t, racyTrace(60, 8))
	got, err := DecodeEntry(encodeEntry(ent))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, ent.Payload) || got.Backend != ent.Backend ||
		got.MemBytes != ent.MemBytes || got.Records != ent.Records {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, ent)
	}
}

func TestOversizedEntrySkipped(t *testing.T) {
	c, err := New(Config{MaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	big := Entry{Payload: make([]byte, 1024), Backend: "dense"}
	key := segKey("big")
	c.Put(key, big)
	if _, ok := c.Get(key); ok {
		t.Fatal("oversized entry admitted")
	}
	if c.Bytes() != 0 {
		t.Fatal("oversized entry charged the budget")
	}
}

func FuzzDecodeEntry(f *testing.F) {
	tr := racyTrace(60, 9)
	g, err := hb.Build(tr, hb.Config{})
	if err != nil {
		f.Fatal(err)
	}
	ws := detect.ScanGraph(g, detect.Options{})
	valid := encodeEntry(Entry{Payload: ws.Encode(), Backend: "dense", MemBytes: 123, Records: 60})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("DCSC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ent, err := DecodeEntry(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode to an equivalent envelope and
		// carry a payload the hardened scan decoder accepts.
		if _, err := detect.DecodeWindowScan(ent.Payload); err != nil {
			t.Fatalf("accepted envelope with rejected payload: %v", err)
		}
		again, err := DecodeEntry(encodeEntry(ent))
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(again.Payload, ent.Payload) || again.Backend != ent.Backend ||
			again.MemBytes != ent.MemBytes || again.Records != ent.Records {
			t.Fatal("envelope not canonical")
		}
	})
}
