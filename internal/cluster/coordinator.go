package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcatch/internal/core"
	"dcatch/internal/detect"
	"dcatch/internal/hb"
	"dcatch/internal/obs"
	"dcatch/internal/scancache"
	"dcatch/internal/trace"
)

// Config configures one coordinated trace job.
type Config struct {
	// Peers lists worker base URLs ("http://host:port"). Required.
	Peers []string

	// ChunkSize is the window length in records (required, > 0);
	// ChunkOverlap defaults to ChunkSize/4, exactly as hb.ChunkWindows.
	ChunkSize    int
	ChunkOverlap int

	// HB and Detect are the per-window analysis options. They serve two
	// roles: their wire-expressible subset (backend, scan mode, MaxGroup,
	// MemBudget) becomes the ScanRequest sent to every worker, and they
	// drive the local re-run of any window whose remote scan failed —
	// guaranteeing remote and fallback scans agree. Rule-ablation switches
	// and LoopReads are rejected: they cannot ride the wire.
	HB     hb.Config
	Detect detect.Options

	// InFlight is the number of concurrent requests per peer (default 2:
	// one scanning, one pipelined behind it).
	InFlight int

	// Retries bounds attempts per window on its assigned peer (default 5);
	// RetryBackoff is the initial backoff after a 429 or failure, doubling
	// per attempt up to MaxBackoff (defaults 25ms and 400ms). A window
	// that exhausts its attempts is re-run locally.
	Retries      int
	RetryBackoff time.Duration
	MaxBackoff   time.Duration

	// RequestTimeout bounds one scan RPC (default 2m).
	RequestTimeout time.Duration

	// Probation is the initial delay before a peer marked down is probed
	// with a live window again (default 250ms, doubling per failed probe
	// up to 16x). A restarted worker rejoins the job at the next probe
	// instead of staying down until Finish.
	Probation time.Duration

	// Cache, when non-nil, memoizes window scans: a window whose segment
	// bytes and wire options match a cached entry is answered without any
	// dispatch, and every successful remote or local scan populates the
	// cache. The value is the worker's canonical DCWS reply, so cached and
	// fresh replies are indistinguishable by construction.
	Cache *scancache.Cache

	// Client is the HTTP client for peer calls (default http.DefaultClient
	// semantics with no global timeout; per-request contexts apply).
	Client *http.Client

	// Obs receives cluster.* counters/histograms and per-peer scan spans;
	// Logf receives fallback and peer-health notices.
	Obs  *obs.Recorder
	Logf func(format string, args ...any)
}

// Result is the outcome of one coordinated job.
type Result struct {
	// Report is the merged candidate report (nil when OOM).
	Report *detect.Report
	// OOM is set when some window's graph exceeded the memory budget even
	// locally; Err is that first window's error — the same shape the
	// single-node chunked replay reports.
	OOM bool
	Err error
	// Windows counts the job's windows; Remote of them were scanned by
	// peers, Local were re-run by the coordinator after remote failure,
	// and Cached were answered from the scan cache without any dispatch.
	Windows int
	Remote  int
	Local   int
	Cached  int
	// Backend names the first window's reachability backend and
	// PeakMemBytes the largest per-window closure footprint.
	Backend      string
	PeakMemBytes int64
}

// peerDownAfter is how many consecutive hard failures (transport errors or
// non-429 statuses) mark a peer down; its remaining windows fail fast to
// the local fallback instead of burning a timeout each.
const peerDownAfter = 3

var errClosed = errors.New("cluster: coordinator closed")

type task struct {
	index      int
	start, end int
	body       []byte
	key        scancache.Key
	useCache   bool
	out        chan scanOut
}

type scanOut struct {
	ws      detect.WindowScan
	mem     int64
	backend string
	remote  bool
	cached  bool
	err     error
}

type peer struct {
	base  string
	queue chan task
	fails atomic.Int32
	down  atomic.Bool

	// Probation state: while down, one task at a time may probe the peer
	// with its live window once the backoff deadline passes; a successful
	// probe (any live answer, even a 429) recovers the peer, a failed one
	// doubles the wait.
	mu        sync.Mutex
	probeAt   time.Time
	probeWait time.Duration
	probing   bool
}

// markDown flips the peer down and schedules the first probation probe.
// Returns false if the peer was already down.
func (p *peer) markDown(initial time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down.Load() {
		return false
	}
	p.probeWait = initial
	p.probeAt = time.Now().Add(initial)
	p.probing = false
	p.down.Store(true)
	return true
}

// allowProbe reports whether the calling task may probe the down peer now;
// at most one probe is in flight at a time.
func (p *peer) allowProbe() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.down.Load() || p.probing || time.Now().Before(p.probeAt) {
		return false
	}
	p.probing = true
	return true
}

// probeFailed reschedules the next probe with a doubled, bounded wait.
func (p *peer) probeFailed(initial time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probing = false
	p.probeWait *= 2
	if max := 16 * initial; p.probeWait > max {
		p.probeWait = max
	}
	p.probeAt = time.Now().Add(p.probeWait)
}

// recovered clears the down state after a successful probe.
func (p *peer) recovered() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probing = false
	p.fails.Store(0)
	p.down.Store(false)
}

// Coordinator drives one trace job across the configured peers. It is used
// by a single goroutine: Notify during ingest as the trace grows, then
// Finish once the trace is complete — or Close to abandon the job. Peer
// dispatch and the scans themselves run on internal goroutines; only the
// window-ordered fold in Finish is sequential, which is what makes the
// output deterministic regardless of reply arrival order.
type Coordinator struct {
	cfg  Config
	req  ScanRequest // wire template; Window/Start filled per task
	rec  *obs.Recorder
	logf func(string, ...any)

	size, overlap int
	peers         []*peer
	wg            sync.WaitGroup
	closeOnce     sync.Once
	aborted       atomic.Bool

	start    int // open window's start
	windows  [][2]int
	outs     []chan scanOut
	keys     []scancache.Key // per-window cache keys (zero when !cached)
	finished bool

	spec   scancache.Spec
	cached bool
}

// NewCoordinator validates the config and starts the per-peer senders.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	if cfg.ChunkSize <= 0 {
		return nil, fmt.Errorf("cluster: chunk size must be positive, got %d", cfg.ChunkSize)
	}
	if cfg.HB.DisableEvent || cfg.HB.DisableRPC || cfg.HB.DisableSocket || cfg.HB.DisablePush || len(cfg.HB.LoopReads) > 0 {
		return nil, fmt.Errorf("cluster: HB rule ablations and LoopReads are not supported in cluster mode")
	}
	if cfg.Detect.SuppressPull {
		// Not wire-expressible: workers would scan without it while the
		// local fallback applied it, splitting the report.
		return nil, fmt.Errorf("cluster: Detect.SuppressPull is not supported in cluster mode")
	}
	if cfg.InFlight <= 0 {
		cfg.InFlight = 2
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 5
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 400 * time.Millisecond
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	if cfg.Probation <= 0 {
		cfg.Probation = 250 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	overlap := cfg.ChunkOverlap
	if overlap <= 0 {
		overlap = cfg.ChunkSize / 4
	}
	if overlap >= cfg.ChunkSize {
		overlap = cfg.ChunkSize - 1
	}
	c := &Coordinator{
		cfg: cfg,
		req: ScanRequest{
			Reach:     cfg.HB.ReachBackend.String(),
			Scan:      cfg.Detect.Scan.String(),
			MaxGroup:  cfg.Detect.MaxGroup,
			MemBudget: cfg.HB.MemBudget,
		},
		rec:     cfg.Obs,
		logf:    cfg.Logf,
		size:    cfg.ChunkSize,
		overlap: overlap,
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	if cfg.Cache != nil {
		// The rejections above guarantee the options are wire-expressible,
		// so SpecFor cannot fail here; the check is defensive.
		c.spec, c.cached = scancache.SpecFor(cfg.HB, cfg.Detect)
	}
	for _, p := range cfg.Peers {
		base := strings.TrimRight(strings.TrimSpace(p), "/")
		u, err := url.Parse(base)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad peer URL %q", p)
		}
		pr := &peer{base: base, queue: make(chan task, cfg.InFlight)}
		c.peers = append(c.peers, pr)
		for k := 0; k < cfg.InFlight; k++ {
			c.wg.Add(1)
			go c.peerLoop(pr)
		}
	}
	return c, nil
}

// Notify dispatches every window that has filled within the first n records
// of tr — the streaming restatement of hb.ChunkWindows' loop, called from
// the ingest path as segments arrive. tr may still be growing: only the
// decoded prefix is touched, and each window's segment is keyed and (on a
// cache miss) encoded before Notify returns, so later appends (or
// backing-array reallocation) cannot race the dispatch. Enqueueing blocks once the assigned peer's bounded
// queue is full, which backpressures ingest instead of buffering the whole
// trace in flight.
func (c *Coordinator) Notify(tr *trace.Trace) {
	for c.start+c.size <= len(tr.Recs) {
		end := c.start + c.size
		c.dispatch(tr, c.start, end)
		c.start = end - c.overlap
	}
}

func (c *Coordinator) dispatch(tr *trace.Trace, start, end int) {
	i := len(c.windows)
	out := make(chan scanOut, 1)
	c.windows = append(c.windows, [2]int{start, end})
	c.outs = append(c.outs, out)
	var key scancache.Key
	if c.cached {
		key = c.spec.KeyTrace(tr.Window(start, end))
	}
	c.keys = append(c.keys, key)
	if c.cached {
		// The key is a field hash over the window's records, so the lookup
		// skips segment encoding entirely. A hit answers the window right
		// here: nothing ships to a peer, and a resubmitted trace with 1%
		// changed records sends only its dirty windows over the wire.
		if ent, ok := c.cfg.Cache.Get(key); ok {
			if ws, err := detect.DecodeWindowScan(ent.Payload); err == nil {
				c.rec.Count("cluster.windows.cached", 1)
				out <- scanOut{ws: ws, mem: ent.MemBytes, backend: ent.Backend, cached: true}
				return
			}
			c.cfg.Cache.Discard(key)
		}
	}
	c.rec.Count("cluster.windows.dispatched", 1)
	body := tr.Window(start, end).Encode()
	c.peers[i%len(c.peers)].queue <- task{index: i, start: start, end: end, body: body,
		key: key, useCache: c.cached, out: out}
}

func (c *Coordinator) closeQueues() {
	c.closeOnce.Do(func() {
		for _, p := range c.peers {
			close(p.queue)
		}
	})
}

// Close abandons the job: in-flight scans stop retrying and queued windows
// are discarded. It must not race Notify or Finish — callers invoke it
// after the job reaches a terminal state without Finish having run (for
// example a trace job canceled while still queued).
func (c *Coordinator) Close() {
	c.aborted.Store(true)
	c.closeQueues()
}

// Finish dispatches the tail window, waits for every reply in window-index
// order — re-running any failed window locally — and folds them through
// ChunkMerger.Merge. tr must be the complete trace Notify was fed.
func (c *Coordinator) Finish(tr *trace.Trace) *Result {
	if c.finished {
		return &Result{OOM: true, Err: fmt.Errorf("cluster: Finish called twice")}
	}
	c.finished = true
	n := len(tr.Recs)
	if len(c.windows) == 0 || c.windows[len(c.windows)-1][1] < n {
		c.dispatch(tr, c.start, n)
	}
	c.closeQueues()

	sp := c.rec.Span("cluster.merge")
	sp.Attr("windows", len(c.windows))
	sp.Attr("peers", len(c.peers))
	dopts := c.cfg.Detect
	dopts.Obs = sp
	merger := detect.NewChunkMerger(dopts)
	res := &Result{Windows: len(c.windows)}
	for i, wn := range c.windows {
		out := <-c.outs[i]
		if out.err != nil && res.Err == nil {
			c.rec.Count("cluster.windows.local", 1)
			c.logf("cluster: window %d [%d,%d): remote scan failed (%v); re-running locally",
				i, wn[0], wn[1], out.err)
			out = c.scanLocal(tr, wn, sp)
			if out.err == nil && c.cached {
				// Encode before Merge below rebases the scan in place.
				c.cfg.Cache.Put(c.keys[i], scancache.Entry{
					Payload:  out.ws.Encode(),
					Backend:  out.backend,
					MemBytes: out.mem,
					Records:  wn[1] - wn[0],
				})
			}
		}
		if out.err != nil {
			// First failure wins and later windows are skipped — the same
			// shape the single-node chunked replay reports, and the local
			// error for an over-budget window is that path's exact error.
			if res.Err == nil {
				res.OOM, res.Err = true, out.err
			}
			continue
		}
		switch {
		case out.cached:
			res.Cached++
		case out.remote:
			res.Remote++
			c.rec.Count("cluster.windows.remote", 1)
		default:
			res.Local++
		}
		if res.Backend == "" {
			res.Backend = out.backend
		}
		if out.mem > res.PeakMemBytes {
			res.PeakMemBytes = out.mem
		}
		merger.Merge(out.ws, wn[0])
	}
	c.wg.Wait()
	if res.OOM {
		sp.Attr("oom", true)
		sp.End()
		return res
	}
	res.Report = merger.Report()
	sp.Attr("remote_windows", res.Remote)
	sp.Attr("local_windows", res.Local)
	sp.Attr("cached_windows", res.Cached)
	sp.End()
	return res
}

// scanLocal re-runs one window on the coordinator — the fallback that makes
// a dead or saturated worker degrade the job to slower, never wrong.
func (c *Coordinator) scanLocal(tr *trace.Trace, wn [2]int, parent *obs.Span) scanOut {
	sp := parent.Child("cluster.local_scan")
	sp.Attr("window_start", wn[0])
	defer sp.End()
	hcfg := c.cfg.HB
	hcfg.Parallelism = 1
	hcfg.Obs = sp
	g, err := hb.Build(tr.Window(wn[0], wn[1]), hcfg)
	if err != nil {
		return scanOut{err: fmt.Errorf("hb: chunk [%d,%d): %w", wn[0], wn[1], err)}
	}
	dopts := c.cfg.Detect
	dopts.Obs = sp
	return scanOut{ws: detect.ScanGraph(g, dopts), mem: g.MemBytes(), backend: g.Backend().String()}
}

func (c *Coordinator) peerLoop(p *peer) {
	defer c.wg.Done()
	for t := range p.queue {
		if c.aborted.Load() {
			t.out <- scanOut{err: errClosed}
			continue
		}
		t.out <- c.scanRemote(p, t)
	}
}

// scanRemote runs one window's RPC with bounded retries. 429 means the
// worker's scan slots (or admission gate) are saturated: back off and try
// again without counting against peer health. Anything else — transport
// errors, 5xx, an undecodable reply — is a hard failure; peerDownAfter of
// those in a row mark the peer down and its remaining windows fail fast.
// A down peer is not down forever: once the probation deadline passes, one
// task at a time probes it with its live window — any answer (even a 429)
// recovers the peer, a failed probe doubles the wait — so a restarted
// worker rejoins the job mid-flight.
func (c *Coordinator) scanRemote(p *peer, t task) scanOut {
	sp := c.rec.Span("cluster.scan")
	sp.Attr("peer", p.base)
	sp.Attr("window", t.index)
	sp.Attr("records", t.end-t.start)
	defer sp.End()
	req := c.req
	req.Window, req.Start = t.index, t.start
	u := p.base + ScanPath + "?" + req.query().Encode()
	backoff := c.cfg.RetryBackoff
	var lastErr error
	probing := false
	endProbe := func(alive bool) {
		if !probing {
			return
		}
		probing = false
		if alive {
			p.recovered()
			c.rec.Count("cluster.peers.recovered", 1)
			c.logf("cluster: peer %s answered its probation probe; resuming remote dispatch", p.base)
		} else {
			p.probeFailed(c.cfg.Probation)
		}
	}
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		if c.aborted.Load() {
			endProbe(false)
			return scanOut{err: errClosed}
		}
		if p.down.Load() && !probing {
			if p.allowProbe() {
				probing = true
				c.rec.Count("cluster.peers.probes", 1)
			} else {
				lastErr = fmt.Errorf("cluster: peer %s is down", p.base)
				break
			}
		}
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > c.cfg.MaxBackoff {
				backoff = c.cfg.MaxBackoff
			}
		}
		out, busy, err := c.attempt(u, t)
		if err == nil {
			endProbe(true)
			p.fails.Store(0)
			sp.Attr("attempts", attempt+1)
			return out
		}
		lastErr = err
		if busy {
			endProbe(true) // the peer answered: alive, just saturated
			c.rec.Count("cluster.retries.busy", 1)
			continue
		}
		if probing {
			// Still dead: reschedule and fall back without burning the
			// remaining retries against it.
			endProbe(false)
			break
		}
		c.rec.Count("cluster.peer_failures", 1)
		if p.fails.Add(1) >= peerDownAfter && p.markDown(c.cfg.Probation) {
			c.rec.Count("cluster.peers.down", 1)
			c.logf("cluster: peer %s marked down after %d consecutive failures (%v); probing again in %v",
				p.base, peerDownAfter, err, c.cfg.Probation)
		}
	}
	sp.Attr("failed", true)
	return scanOut{err: lastErr}
}

func (c *Coordinator) attempt(u string, t task) (scanOut, bool, error) {
	t0 := time.Now()
	hreq, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(t.body))
	if err != nil {
		return scanOut{}, false, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RequestTimeout)
	defer cancel()
	resp, err := c.cfg.Client.Do(hreq.WithContext(ctx))
	if err != nil {
		return scanOut{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return scanOut{}, true, fmt.Errorf("cluster: peer busy (429)")
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return scanOut{}, false, fmt.Errorf("cluster: peer answered %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return scanOut{}, false, err
	}
	ws, err := detect.DecodeWindowScan(body)
	if err != nil {
		return scanOut{}, false, err
	}
	mem, _ := strconv.ParseInt(resp.Header.Get(headerMemBytes), 10, 64)
	if t.useCache {
		// The reply body IS the canonical DCWS payload — store it verbatim
		// so the next job with this segment skips the wire entirely.
		c.cfg.Cache.Put(t.key, scancache.Entry{
			Payload:  body,
			Backend:  resp.Header.Get(headerBackend),
			MemBytes: mem,
			Records:  t.end - t.start,
		})
	}
	c.rec.Observe("cluster.scan_rtt_us", time.Since(t0).Microseconds())
	return scanOut{ws: ws, mem: mem, backend: resp.Header.Get(headerBackend), remote: true}, false, nil
}

// CoreResult lifts a cluster Result into the *core.Result shape the shared
// renderer consumes, so coordinated jobs print bytes identical to the
// single-node chunked path (serve.RenderTrace renders only the summary
// counts and the final report, both of which the merged report determines).
func CoreResult(tr *trace.Trace, cres *Result, analysis time.Duration) *core.Result {
	res := &core.Result{Trace: tr, Chunked: true}
	res.Stats.TraceRecords = len(tr.Recs)
	res.Stats.TraceBytes = tr.EncodedSize()
	res.Stats.AnalysisTime = analysis
	if cres.OOM {
		res.OOM = true
		return res
	}
	rep := cres.Report
	res.TA, res.SP, res.Final = rep, rep, rep
	res.Stats.HBVertices = len(tr.Recs)
	res.Stats.HBMemBytes = cres.PeakMemBytes
	res.Stats.ReachBackend = cres.Backend
	res.Stats.TAStatic = rep.StaticCount()
	res.Stats.TACallstack = rep.CallstackCount()
	res.Stats.SPStatic, res.Stats.SPCallstack = res.Stats.TAStatic, res.Stats.TACallstack
	res.Stats.LPStatic, res.Stats.LPCallstack = res.Stats.TAStatic, res.Stats.TACallstack
	return res
}
