package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dcatch/internal/detect"
	"dcatch/internal/hb"
	"dcatch/internal/lifecycle"
	"dcatch/internal/obs"
	"dcatch/internal/trace"
)

// racyTrace builds a trace whose unsynchronized conflicting accesses land in
// every chunk window, so each shard contributes candidates and the same
// callstack pairs recur across windows.
func racyTrace(n int) *trace.Trace {
	rng := rand.New(rand.NewSource(11))
	c := trace.NewCollector("racy")
	for i := 0; i < n; i++ {
		th := int32(1 + rng.Intn(4))
		kind := trace.KMemRead
		if rng.Intn(2) == 0 {
			kind = trace.KMemWrite
		}
		c.Emit(trace.Rec{
			Node: "n", Thread: th, Ctx: th, CtxKind: trace.CtxRegular,
			Kind: kind, Obj: []string{"n/a", "n/b", "n/c"}[rng.Intn(3)],
			StaticID: int32(10 + rng.Intn(6)),
			Stack:    []int32{int32(100 + rng.Intn(5)), int32(rng.Intn(3))},
		})
	}
	return c.Trace()
}

// oracle renders the single-node chunked report the cluster must match.
func oracle(t *testing.T, tr *trace.Trace, chunk int) string {
	t.Helper()
	chunks, err := hb.BuildChunked(tr, hb.ChunkConfig{ChunkSize: chunk})
	if err != nil {
		t.Fatal(err)
	}
	return detect.FindChunked(chunks, detect.Options{Parallelism: 1}).Format(nil)
}

func newWorkerServer(t *testing.T, cfg WorkerConfig) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("POST "+ScanPath, NewWorker(cfg))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func runJob(t *testing.T, tr *trace.Trace, cfg Config) (*Result, *obs.Recorder) {
	t.Helper()
	rec := obs.New()
	cfg.Obs = rec
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord.Notify(tr)
	return coord.Finish(tr), rec
}

func TestClusterByteIdentical(t *testing.T) {
	tr := racyTrace(2600)
	const chunk = 500
	want := oracle(t, tr, chunk)

	// The second worker answers with a varying delay so replies race back
	// out of dispatch order; the window-ordered fold must not care.
	w1 := newWorkerServer(t, WorkerConfig{Scans: 2})
	delayed := NewWorker(WorkerConfig{Scans: 2})
	var mu atomic.Int32
	w2mux := http.NewServeMux()
	w2mux.HandleFunc("POST "+ScanPath, func(rw http.ResponseWriter, r *http.Request) {
		n := mu.Add(1)
		time.Sleep(time.Duration(n*7%20) * time.Millisecond)
		delayed.ServeHTTP(rw, r)
	})
	w2 := httptest.NewServer(w2mux)
	t.Cleanup(w2.Close)

	res, rec := runJob(t, tr, Config{
		Peers:     []string{w1.URL, w2.URL},
		ChunkSize: chunk,
	})
	if res.OOM {
		t.Fatalf("unexpected OOM: %v", res.Err)
	}
	if got := res.Report.Format(nil); got != want {
		t.Fatalf("cluster report differs from single-node chunked:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if res.Remote != res.Windows || res.Local != 0 {
		t.Fatalf("windows=%d remote=%d local=%d; want all remote", res.Windows, res.Remote, res.Local)
	}
	if mu.Load() == 0 {
		t.Fatal("second worker never scanned a window")
	}
	ctr := rec.Counters()
	if ctr["cluster.windows.remote"] != int64(res.Windows) || ctr["cluster.windows.dispatched"] != int64(res.Windows) {
		t.Fatalf("counters %v inconsistent with %d windows", ctr, res.Windows)
	}
	if res.Backend == "" || res.PeakMemBytes == 0 {
		t.Fatalf("missing aggregated stats: backend=%q peak=%d", res.Backend, res.PeakMemBytes)
	}
}

// TestWorkerDiesMidJob kills one worker after its first scan: its remaining
// windows must be re-run locally and the report must not change.
func TestWorkerDiesMidJob(t *testing.T) {
	tr := racyTrace(2600)
	const chunk = 500
	want := oracle(t, tr, chunk)

	w1 := newWorkerServer(t, WorkerConfig{})
	flaky := NewWorker(WorkerConfig{})
	var served atomic.Int32
	w2mux := http.NewServeMux()
	w2mux.HandleFunc("POST "+ScanPath, func(rw http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 1 {
			panic(http.ErrAbortHandler) // connection dropped mid-reply
		}
		flaky.ServeHTTP(rw, r)
	})
	w2 := httptest.NewServer(w2mux)
	t.Cleanup(w2.Close)

	res, rec := runJob(t, tr, Config{
		Peers:        []string{w1.URL, w2.URL},
		ChunkSize:    chunk,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   2 * time.Millisecond,
	})
	if res.OOM {
		t.Fatalf("unexpected OOM: %v", res.Err)
	}
	if got := res.Report.Format(nil); got != want {
		t.Fatalf("report changed after worker death:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if res.Local == 0 {
		t.Fatal("no window fell back to the local scan")
	}
	if res.Remote+res.Local != res.Windows {
		t.Fatalf("remote=%d local=%d windows=%d", res.Remote, res.Local, res.Windows)
	}
	ctr := rec.Counters()
	if ctr["cluster.peer_failures"] == 0 {
		t.Error("cluster.peer_failures not counted")
	}
	if ctr["cluster.peers.down"] != 1 {
		t.Errorf("cluster.peers.down = %d, want 1", ctr["cluster.peers.down"])
	}
}

// TestPeerProbationRecovery kills the only worker mid-job and restarts it
// after the probation deadline: windows dispatched during the outage fall
// back to local scans, the first window after the restart answers the
// probation probe, and every later window — including the Finish tail —
// goes remote again. The report must match the single-node chunked oracle
// throughout.
func TestPeerProbationRecovery(t *testing.T) {
	tr := racyTrace(2600)
	const chunk = 500
	want := oracle(t, tr, chunk)

	worker := NewWorker(WorkerConfig{Scans: 2})
	var served atomic.Int32
	var dead atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ScanPath, func(rw http.ResponseWriter, r *http.Request) {
		served.Add(1)
		if dead.Load() {
			panic(http.ErrAbortHandler) // "killed": connection dropped
		}
		worker.ServeHTTP(rw, r)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	rec := obs.New()
	coord, err := NewCoordinator(Config{
		Peers:     []string{ts.URL},
		ChunkSize: chunk,
		// One slot per peer keeps dispatch serial, so exactly one window
		// probes the restarted worker and recovery is deterministic.
		InFlight:     1,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   2 * time.Millisecond,
		Probation:    50 * time.Millisecond,
		Obs:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	prefix := func(n int) *trace.Trace {
		return &trace.Trace{Program: tr.Program, Recs: tr.Recs[:n], QueueConsumers: tr.QueueConsumers}
	}
	wait := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; counters %v", what, rec.Counters())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Healthy phase: the first two windows fill and scan remotely.
	coord.Notify(prefix(1000))
	wait(func() bool { return served.Load() >= 2 }, "two remote scans")

	// Outage: the next two windows hit a dead worker. Three consecutive
	// failures mark the peer down; both windows fall back local.
	dead.Store(true)
	coord.Notify(prefix(1800))
	wait(func() bool { return rec.Counters()["cluster.peers.down"] == 1 }, "peer marked down")

	// Restart after the probation deadline: the next window's task is
	// allowed to probe, the probe answers, and remote dispatch resumes.
	time.Sleep(60 * time.Millisecond)
	dead.Store(false)
	coord.Notify(prefix(2600))
	res := coord.Finish(tr)

	if res.OOM {
		t.Fatalf("unexpected OOM: %v", res.Err)
	}
	if got := res.Report.Format(nil); got != want {
		t.Fatalf("report changed across kill/restart:\nwant:\n%s\ngot:\n%s", want, got)
	}
	ctr := rec.Counters()
	if ctr["cluster.peers.down"] != 1 || ctr["cluster.peers.recovered"] != 1 {
		t.Errorf("down=%d recovered=%d, want 1/1", ctr["cluster.peers.down"], ctr["cluster.peers.recovered"])
	}
	if res.Local != 2 {
		t.Errorf("local=%d, want exactly the 2 outage windows", res.Local)
	}
	if res.Remote != res.Windows-2 {
		t.Errorf("remote=%d of %d windows: remote dispatch did not resume after recovery", res.Remote, res.Windows)
	}
	if ctr["cluster.windows.remote"] != int64(res.Remote) {
		t.Errorf("cluster.windows.remote=%d, result remote=%d", ctr["cluster.windows.remote"], res.Remote)
	}
}

// TestBusyRetrySucceeds answers the first two attempts 429; the coordinator
// must back off and retry on the same peer without local fallback.
func TestBusyRetrySucceeds(t *testing.T) {
	tr := racyTrace(1300)
	const chunk = 500
	want := oracle(t, tr, chunk)

	real := NewWorker(WorkerConfig{})
	var n atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ScanPath, func(rw http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			rw.Header().Set("Retry-After", "1")
			http.Error(rw, "busy", http.StatusTooManyRequests)
			return
		}
		real.ServeHTTP(rw, r)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	res, rec := runJob(t, tr, Config{
		Peers:        []string{ts.URL},
		ChunkSize:    chunk,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   2 * time.Millisecond,
	})
	if res.OOM || res.Local != 0 || res.Remote != res.Windows {
		t.Fatalf("windows=%d remote=%d local=%d oom=%v; want all remote", res.Windows, res.Remote, res.Local, res.OOM)
	}
	if got := res.Report.Format(nil); got != want {
		t.Fatalf("report differs after busy retries:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if rec.Counters()["cluster.retries.busy"] < 2 {
		t.Errorf("cluster.retries.busy = %d, want >= 2", rec.Counters()["cluster.retries.busy"])
	}
}

// TestAlwaysBusyFallsBackLocal exhausts the bounded retries against a peer
// that never admits work; every window must complete locally.
func TestAlwaysBusyFallsBackLocal(t *testing.T) {
	tr := racyTrace(1300)
	const chunk = 500
	want := oracle(t, tr, chunk)

	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ScanPath, func(rw http.ResponseWriter, r *http.Request) {
		http.Error(rw, "busy", http.StatusTooManyRequests)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	res, _ := runJob(t, tr, Config{
		Peers:        []string{ts.URL},
		ChunkSize:    chunk,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   time.Millisecond,
	})
	if res.OOM {
		t.Fatalf("unexpected OOM: %v", res.Err)
	}
	if res.Remote != 0 || res.Local != res.Windows {
		t.Fatalf("remote=%d local=%d windows=%d; want all local", res.Remote, res.Local, res.Windows)
	}
	if got := res.Report.Format(nil); got != want {
		t.Fatalf("all-local fallback report differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestWorkerDrainRejects: once the host's drainer is closing, new scans are
// refused with 503 so a terminating worker never accepts work it cannot
// finish.
func TestWorkerDrainRejects(t *testing.T) {
	var drain lifecycle.Drainer
	drain.Close(0)
	ts := newWorkerServer(t, WorkerConfig{Drain: &drain})

	tr := racyTrace(100)
	resp, err := http.Post(ts.URL+ScanPath+"?window=0&start=0", "application/octet-stream", bytes.NewReader(tr.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

// TestWorkerAdmissionTimeout: an admission gate that never grants memory
// turns into a 429 once AdmitTimeout elapses — the coordinator's busy
// handling, not an error, absorbs a memory-starved worker.
func TestWorkerAdmissionTimeout(t *testing.T) {
	ts := newWorkerServer(t, WorkerConfig{
		AdmitTimeout: 10 * time.Millisecond,
		Admit: func(ctx context.Context, need int64) (func(), error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	tr := racyTrace(100)
	resp, err := http.Post(ts.URL+ScanPath+"?window=0&start=0", "application/octet-stream", bytes.NewReader(tr.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
}

func TestWorkerRejectsBadRequests(t *testing.T) {
	ts := newWorkerServer(t, WorkerConfig{})
	post := func(query string, body []byte) int {
		t.Helper()
		resp, err := http.Post(ts.URL+ScanPath+query, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	tr := racyTrace(50)
	if got := post("?reach=bogus", tr.Encode()); got != http.StatusBadRequest {
		t.Errorf("bad reach: status %d, want 400", got)
	}
	if got := post("?scan=bogus", tr.Encode()); got != http.StatusBadRequest {
		t.Errorf("bad scan: status %d, want 400", got)
	}
	if got := post("?window=-1", tr.Encode()); got != http.StatusBadRequest {
		t.Errorf("negative window: status %d, want 400", got)
	}
	if got := post("", []byte("not a trace")); got != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", got)
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	base := Config{Peers: []string{"http://localhost:1"}, ChunkSize: 100}
	if _, err := NewCoordinator(Config{ChunkSize: 100}); err == nil {
		t.Error("no peers accepted")
	}
	if _, err := NewCoordinator(Config{Peers: base.Peers}); err == nil {
		t.Error("zero chunk size accepted")
	}
	if _, err := NewCoordinator(Config{Peers: []string{"::bad::"}, ChunkSize: 100}); err == nil {
		t.Error("unparseable peer URL accepted")
	}
	cfg := base
	cfg.HB = hb.Config{DisableRPC: true}
	if _, err := NewCoordinator(cfg); err == nil || !strings.Contains(err.Error(), "ablation") {
		t.Errorf("rule ablation accepted: %v", err)
	}
	cfg = base
	cfg.HB = hb.Config{LoopReads: map[int32][]int32{40: {21}}}
	if _, err := NewCoordinator(cfg); err == nil {
		t.Error("LoopReads accepted")
	}
}

// TestScanRequestQueryRoundTrip pins the wire form of the typed request.
func TestScanRequestQueryRoundTrip(t *testing.T) {
	in := ScanRequest{Window: 3, Start: 1500, Reach: "chain", Scan: "epoch", MaxGroup: 40, MemBudget: 1 << 20}
	out, err := parseScanRequest(in.query())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed request: %+v != %+v", out, in)
	}
	if _, err := parseScanRequest(ScanRequest{}.query()); err != nil {
		t.Fatalf("zero request must parse (defaults): %v", err)
	}
}

// TestClusterOOMMatchesChunked: a window whose graph exceeds the memory
// budget remotely is re-run locally, fails there too, and the job reports
// OOM with the single-node chunk error shape.
func TestClusterOOMMatchesChunked(t *testing.T) {
	tr := racyTrace(1300)
	const chunk = 500
	ts := newWorkerServer(t, WorkerConfig{})
	res, _ := runJob(t, tr, Config{
		Peers:        []string{ts.URL},
		ChunkSize:    chunk,
		HB:           hb.Config{MemBudget: 1}, // nothing fits
		RetryBackoff: time.Millisecond,
		MaxBackoff:   time.Millisecond,
		Retries:      1,
	})
	if !res.OOM || res.Err == nil {
		t.Fatalf("want OOM result, got %+v", res)
	}
	if want := fmt.Sprintf("hb: chunk [%d,%d):", 0, chunk); !strings.Contains(res.Err.Error(), want) {
		t.Fatalf("error %q does not carry the chunk shape %q", res.Err, want)
	}
	if res.Report != nil {
		t.Fatal("OOM result carries a report")
	}
}
