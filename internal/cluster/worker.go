package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"dcatch/internal/detect"
	"dcatch/internal/hb"
	"dcatch/internal/lifecycle"
	"dcatch/internal/obs"
	"dcatch/internal/scancache"
	"dcatch/internal/trace"
)

// WorkerConfig configures the worker side of the window-scan RPC.
type WorkerConfig struct {
	// Scans caps concurrent window scans. A request arriving while every
	// slot is busy is answered 429 + Retry-After immediately — the
	// coordinator's backoff, not a server-side queue, absorbs the burst —
	// so a saturated worker stays responsive. Default 1.
	Scans int

	// MaxBodyBytes caps the encoded segment size (default 64 MiB).
	MaxBodyBytes int64

	// Admit, when non-nil, charges the scan against the host's memory
	// gate before any decoding: it blocks until `need` bytes are granted,
	// the context times out (the request is then answered 429), or the
	// gate is closed. The returned release runs when the scan finishes.
	// This is how dcatch-serve makes remote windows count against the
	// same admission budget as local jobs.
	Admit func(ctx context.Context, need int64) (release func(), err error)

	// AdmitTimeout bounds the admission wait (default 2s).
	AdmitTimeout time.Duration

	// Drain, when non-nil, tracks in-flight scans for graceful shutdown;
	// once closing, new scans are refused with 503.
	Drain *lifecycle.Drainer

	// Obs receives cluster.worker.* counters, histograms and spans.
	Obs *obs.Recorder

	// Cache, when non-nil, memoizes window scans across jobs and
	// coordinators: a request whose window records and wire options match a
	// cached entry is answered from the cache without charging a scan slot
	// or the admission gate, and every fresh scan populates the cache.
	Cache *scancache.Cache
}

// Worker is the http.Handler serving ScanPath: it decodes its assigned
// segment, builds the window's HB graph, runs the configured detection
// scan, and returns the serialized detect.WindowScan.
type Worker struct {
	cfg WorkerConfig
	sem chan struct{}
}

// NewWorker builds a worker handler.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Scans <= 0 {
		cfg.Scans = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.AdmitTimeout <= 0 {
		cfg.AdmitTimeout = 2 * time.Second
	}
	return &Worker{cfg: cfg, sem: make(chan struct{}, cfg.Scans)}
}

func (w *Worker) busy(rw http.ResponseWriter, counter string) {
	w.cfg.Obs.Count(counter, 1)
	rw.Header().Set("Retry-After", "1")
	http.Error(rw, "cluster: worker busy", http.StatusTooManyRequests)
}

func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if w.cfg.Drain != nil {
		if !w.cfg.Drain.Enter() {
			w.cfg.Obs.Count("cluster.worker.rejected_draining", 1)
			http.Error(rw, "cluster: worker draining", http.StatusServiceUnavailable)
			return
		}
		defer w.cfg.Drain.Exit()
	}
	if w.cfg.Cache != nil {
		w.serveCached(rw, r)
		return
	}
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	default:
		w.busy(rw, "cluster.worker.rejected_busy")
		return
	}
	req, err := parseScanRequest(r.URL.Query())
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	hcfg, dopts, err := req.scanConfigs()
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if w.cfg.Admit != nil {
		ctx, cancel := context.WithTimeout(r.Context(), w.cfg.AdmitTimeout)
		release, err := w.cfg.Admit(ctx, req.MemBudget)
		cancel()
		if err != nil {
			w.busy(rw, "cluster.worker.rejected_admission")
			return
		}
		defer release()
	}
	tr, err := trace.Decode(http.MaxBytesReader(rw, r.Body, w.cfg.MaxBodyBytes))
	if err != nil {
		http.Error(rw, fmt.Sprintf("cluster: bad segment: %v", err), http.StatusBadRequest)
		return
	}
	w.scanReply(rw, req, hcfg, dopts, tr)
}

// serveCached is the scan path when a window-scan cache is configured. The
// request body is decoded up front so the cache key — a field hash of the
// window's records, the same key the coordinator derives from its window
// sub-trace — can be computed before any scan slot is charged: a hit
// replies immediately even on a fully busy worker, and a miss proceeds
// through the same slot/admission/build/scan flow as the uncached path,
// populating the cache on the way out. A cached payload the decoder
// rejects is discarded, never shipped.
func (w *Worker) serveCached(rw http.ResponseWriter, r *http.Request) {
	req, err := parseScanRequest(r.URL.Query())
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	hcfg, dopts, err := req.scanConfigs()
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	tr, err := trace.Decode(http.MaxBytesReader(rw, r.Body, w.cfg.MaxBodyBytes))
	if err != nil {
		http.Error(rw, fmt.Sprintf("cluster: bad segment: %v", err), http.StatusBadRequest)
		return
	}
	spec, cacheable := scancache.SpecFor(hcfg, dopts)
	var key scancache.Key
	if cacheable {
		key = spec.KeyTrace(tr)
		if ent, hit := w.cfg.Cache.Get(key); hit {
			if _, derr := detect.DecodeWindowScan(ent.Payload); derr != nil {
				w.cfg.Cache.Discard(key)
			} else {
				w.cfg.Obs.Count("cluster.worker.cache_hits", 1)
				rw.Header().Set("Content-Type", "application/octet-stream")
				rw.Header().Set(headerBackend, ent.Backend)
				rw.Header().Set(headerMemBytes, fmt.Sprint(ent.MemBytes))
				rw.Header().Set(headerRecords, fmt.Sprint(ent.Records))
				rw.Write(ent.Payload)
				return
			}
		}
	}
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	default:
		w.busy(rw, "cluster.worker.rejected_busy")
		return
	}
	if w.cfg.Admit != nil {
		ctx, cancel := context.WithTimeout(r.Context(), w.cfg.AdmitTimeout)
		release, err := w.cfg.Admit(ctx, req.MemBudget)
		cancel()
		if err != nil {
			w.busy(rw, "cluster.worker.rejected_admission")
			return
		}
		defer release()
	}
	enc, g := w.scanReply(rw, req, hcfg, dopts, tr)
	if cacheable && enc != nil {
		w.cfg.Cache.Put(key, scancache.Entry{
			Payload:  enc,
			Backend:  g.Backend().String(),
			MemBytes: g.MemBytes(),
			Records:  len(tr.Recs),
		})
	}
}

// scanReply builds the window's HB graph, runs the detection scan, and
// replies with the canonical encoded scan. It returns the encoding and the
// graph (nil, nil when the build failed and the error reply was sent).
func (w *Worker) scanReply(rw http.ResponseWriter, req ScanRequest, hcfg hb.Config, dopts detect.Options, tr *trace.Trace) ([]byte, *hb.Graph) {
	t0 := time.Now()
	sp := w.cfg.Obs.Span("cluster.worker.scan")
	sp.Attr("window", req.Window)
	sp.Attr("start", req.Start)
	sp.Attr("records", len(tr.Recs))
	hcfg.Obs = sp
	dopts.Obs = sp
	g, err := hb.Build(tr, hcfg)
	if err != nil {
		sp.End()
		// The coordinator re-runs failed windows locally; a budget-exceeded
		// window will fail there too and surface as the job's OOM result,
		// exactly as the single-node chunked path reports it.
		http.Error(rw, fmt.Sprintf("cluster: window scan failed: %v", err), http.StatusInternalServerError)
		return nil, nil
	}
	ws := detect.ScanGraph(g, dopts)
	sp.Attr("backend", g.Backend().String())
	sp.Attr("candidates", ws.Candidates())
	sp.End()
	w.cfg.Obs.Count("cluster.worker.scans", 1)
	w.cfg.Obs.Count("cluster.worker.records", int64(len(tr.Recs)))
	w.cfg.Obs.Observe("cluster.worker.scan_us", time.Since(t0).Microseconds())

	enc := ws.Encode()
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set(headerBackend, g.Backend().String())
	rw.Header().Set(headerMemBytes, fmt.Sprint(g.MemBytes()))
	rw.Header().Set(headerRecords, fmt.Sprint(len(tr.Recs)))
	rw.Write(enc)
	return enc, g
}
