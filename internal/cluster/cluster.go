// Package cluster shards one trace-analysis job across a set of
// dcatch-serve worker instances, window by window.
//
// The unit of distribution is the chunk window — the same [start, end)
// decomposition hb.ChunkWindows gives every chunked code path. The
// coordinator slices the trace at record boundaries (trace.Trace.Window),
// ships each window's binary encoding to a worker over a typed HTTP RPC
// (POST /v1/cluster/scan), and folds the returned detect.WindowScan wire
// payloads through detect.ChunkMerger.Merge in strict window-index order.
// Because the window list, the per-window scan, and the merge are the exact
// functions the single-node chunked path runs, the rendered report is
// byte-identical to that path — regardless of how replies race back.
//
// The peer protocol follows the request/response node shape common to
// replicated state machines (see ROADMAP item 2): typed messages (a
// ScanRequest riding the query string plus a binary trace segment; a binary
// WindowScan reply), per-peer bounded queues drained by a fixed number of
// in-flight requests, and failure-tolerant dispatch — a worker answering
// 429 is retried with exponential backoff, a worker that keeps failing is
// marked down, and any window that cannot be scanned remotely is re-run
// locally by the coordinator. A dead worker therefore degrades the job to
// slower, never to wrong.
package cluster

import (
	"fmt"
	"net/url"
	"strconv"

	"dcatch/internal/detect"
	"dcatch/internal/hb"
)

// ScanPath is the worker's window-scan RPC endpoint.
const ScanPath = "/v1/cluster/scan"

// ScanRequest is the typed request half of the window-scan RPC. It rides
// the query string of a POST whose body is the binary-encoded trace
// segment; the reply body is a binary detect.WindowScan (see
// detect.DecodeWindowScan) plus ScanResponse headers.
//
// The request carries only the option subset that changes the scan's bytes:
// reachability backend, scan mode, per-location subsampling cap and the
// per-window memory budget. Per-window scan parallelism is pinned to 1 on
// the worker — window-level sharding across the cluster subsumes it, the
// same choice detect.FindChunked makes for its window workers — and the HB
// rule-ablation switches (Table 9) do not travel: they are a local
// experiment knob, not a job option, and the coordinator refuses configs
// that set them so remote and local-fallback scans can never diverge.
type ScanRequest struct {
	// Window is the window's index in the job's window list; Start is its
	// first record's index in the full trace. Both are diagnostic — the
	// scan itself is position-independent and the coordinator rebases
	// record indices at merge time.
	Window int
	Start  int

	// Reach and Scan name the hb reachability backend and detect scan
	// mode, as accepted by hb.ParseBackend and detect.ParseScanMode.
	Reach string
	Scan  string

	// MaxGroup is detect.Options.MaxGroup (0 = default).
	MaxGroup int

	// MemBudget bounds the window's reachability closure in bytes and is
	// the admission weight the worker charges against its memory gate
	// (0 = the worker's default job size).
	MemBudget int64
}

// query renders the request onto a URL query string.
func (r ScanRequest) query() url.Values {
	q := url.Values{}
	q.Set("window", strconv.Itoa(r.Window))
	q.Set("start", strconv.Itoa(r.Start))
	if r.Reach != "" {
		q.Set("reach", r.Reach)
	}
	if r.Scan != "" {
		q.Set("scan", r.Scan)
	}
	if r.MaxGroup > 0 {
		q.Set("max_group", strconv.Itoa(r.MaxGroup))
	}
	if r.MemBudget > 0 {
		q.Set("mem_budget", strconv.FormatInt(r.MemBudget, 10))
	}
	return q
}

// parseScanRequest decodes and validates the query-string form.
func parseScanRequest(q url.Values) (ScanRequest, error) {
	var r ScanRequest
	intField := func(name string, dst *int) error {
		s := q.Get(name)
		if s == "" {
			return nil
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return fmt.Errorf("cluster: bad %s %q", name, s)
		}
		*dst = v
		return nil
	}
	if err := intField("window", &r.Window); err != nil {
		return r, err
	}
	if err := intField("start", &r.Start); err != nil {
		return r, err
	}
	if err := intField("max_group", &r.MaxGroup); err != nil {
		return r, err
	}
	if s := q.Get("mem_budget"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 0 {
			return r, fmt.Errorf("cluster: bad mem_budget %q", s)
		}
		r.MemBudget = v
	}
	r.Reach = q.Get("reach")
	r.Scan = q.Get("scan")
	if _, err := hb.ParseBackend(reachOrDefault(r.Reach)); err != nil {
		return r, err
	}
	if _, err := detect.ParseScanMode(r.Scan); err != nil {
		return r, err
	}
	return r, nil
}

func reachOrDefault(s string) string {
	if s == "" {
		return "dense"
	}
	return s
}

// scanConfigs materializes the hb/detect option pair a request describes.
func (r ScanRequest) scanConfigs() (hb.Config, detect.Options, error) {
	var hcfg hb.Config
	var dopts detect.Options
	backend, err := hb.ParseBackend(reachOrDefault(r.Reach))
	if err != nil {
		return hcfg, dopts, err
	}
	mode, err := detect.ParseScanMode(r.Scan)
	if err != nil {
		return hcfg, dopts, err
	}
	hcfg.ReachBackend = backend
	hcfg.MemBudget = r.MemBudget
	hcfg.Parallelism = 1
	dopts.Scan = mode
	dopts.MaxGroup = r.MaxGroup
	dopts.Parallelism = 1
	return hcfg, dopts, nil
}

// Worker reply headers. The scan payload itself is the body; these carry
// the per-window stats the coordinator aggregates into the job result.
const (
	headerBackend  = "X-Dcatch-Scan-Backend"
	headerMemBytes = "X-Dcatch-Scan-Mem-Bytes"
	headerRecords  = "X-Dcatch-Scan-Records"
)
