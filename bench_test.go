// Package main's bench_test regenerates every table of the DCatch paper's
// evaluation as Go benchmarks — one Benchmark* per table — plus the two
// design-choice ablations called out in DESIGN.md: reachability
// representation (bit arrays vs vector clocks, §3.2.2) and trigger request
// placement (analyzed vs naive, §7.2).
//
//	go test -bench=. -benchmem
package main

import (
	"runtime"
	"testing"
	"time"

	"dcatch/internal/bench"
	"dcatch/internal/core"
	"dcatch/internal/detect"
	"dcatch/internal/hb"
	"dcatch/internal/obs"
	"dcatch/internal/subjects"
	"dcatch/internal/trigger"
)

// BenchmarkTable3 renders the benchmark inventory (paper Table 3).
func BenchmarkTable3(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Table3()
	}
	b.StopTimer()
	if b.N > 0 {
		b.Logf("\n%s", out)
	}
}

// BenchmarkTable4 runs detection + triggering classification on all seven
// benchmarks (paper Table 4).
func BenchmarkTable4(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", out)
}

// BenchmarkTable5 measures the pruning pipeline stages (paper Table 5).
func BenchmarkTable5(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = bench.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", out)
}

// BenchmarkTable6 measures base/tracing/analysis/pruning cost on the scaled
// workloads (paper Table 6).
func BenchmarkTable6(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = bench.Table6()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", out)
}

// BenchmarkTable7 reports the trace-record breakdown (paper Table 7).
func BenchmarkTable7(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = bench.Table7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", out)
}

// BenchmarkTable8 runs unselective tracing with the bounded analysis budget
// (paper Table 8): the big workloads must run out of memory.
func BenchmarkTable8(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = bench.Table8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", out)
}

// BenchmarkTable9 reruns trace analysis under each HB-rule ablation (paper
// Table 9).
func BenchmarkTable9(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = bench.Table9()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", out)
}

// detectScaledMR runs the standard pipeline on the scaled MapReduce
// workload, the largest trace among the benchmarks.
func detectScaledMR(b *testing.B) *core.Result {
	b.Helper()
	for _, bm := range bench.Benchmarks() {
		if bm.ID != "MR-3274" {
			continue
		}
		res, err := bench.Detect(bm)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Fatal("MR-3274 missing")
	return nil
}

// BenchmarkReachabilityBitset measures DCatch's reachability representation
// (§3.2.2): per-vertex bit arrays with constant-time queries.
func BenchmarkReachabilityBitset(b *testing.B) {
	res := detectScaledMR(b)
	tr := res.Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := hb.Build(tr, hb.Config{})
		if err != nil {
			b.Fatal(err)
		}
		// Query a spread of pairs, as detection does.
		n := g.N()
		for x := 0; x < n; x += 7 {
			for y := x + 1; y < n; y += 97 {
				g.Concurrent(x, y)
			}
		}
	}
}

// BenchmarkReachabilityVectorClocks measures the rejected alternative: one
// vector-clock dimension per handler/RPC instance (§3.2.2 "each event
// handler and RPC function contributing one dimension").
func BenchmarkReachabilityVectorClocks(b *testing.B) {
	res := detectScaledMR(b)
	tr := res.Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := hb.Build(tr, hb.Config{})
		if err != nil {
			b.Fatal(err)
		}
		clocks := g.VectorClocks()
		n := g.N()
		for x := 0; x < n; x += 7 {
			for y := x + 1; y < n; y += 97 {
				clocks[x].Concurrent(clocks[y])
			}
		}
	}
}

// BenchmarkTriggerPlacementAnalyzed validates every HB-4539 report with the
// §5.2 placement analysis (the regionState pair's accesses share the region
// server's single RPC worker thread, so placement decides triggerability).
func BenchmarkTriggerPlacementAnalyzed(b *testing.B) {
	benchmarkPlacement(b, false)
}

// BenchmarkTriggerPlacementNaive validates with requests attached directly
// to the racing accesses — the baseline the paper reports failing for 23 of
// 35 true races (§7.2). The benchmark reports how many reports each mode
// confirms via the "confirmed" metric.
func BenchmarkTriggerPlacementNaive(b *testing.B) {
	benchmarkPlacement(b, true)
}

// BenchmarkParallelSpeedup runs the full chunked trace-analysis pipeline
// (HB closure + candidate detection) on a ~100k-record synthetic trace, once
// on the sequential reference path and once with all CPUs, and reports the
// wall-clock ratio as the "speedup" metric. It fails if the two reports are
// not byte-identical. On a multi-core runner the ratio should track the core
// count; on one core it degenerates to ~1.0 by construction.
func BenchmarkParallelSpeedup(b *testing.B) {
	const records = 100_000
	const chunkSize = 8000
	tr := bench.SyntheticTrace(records, 42)
	run := func(p int) (string, time.Duration) {
		start := time.Now()
		chunks, err := hb.BuildChunked(tr, hb.ChunkConfig{
			Base: hb.Config{Parallelism: p}, ChunkSize: chunkSize,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep := detect.FindChunked(chunks, detect.Options{Parallelism: p})
		return rep.Format(nil), time.Since(start)
	}
	var seqTotal, parTotal time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seqOut, seqDur := run(1)
		parOut, parDur := run(0)
		if seqOut != parOut {
			b.Fatal("parallel report diverged from sequential")
		}
		seqTotal += seqDur
		parTotal += parDur
	}
	b.StopTimer()
	if parTotal > 0 {
		b.ReportMetric(float64(seqTotal)/float64(parTotal), "speedup")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

// BenchmarkObsOverhead measures the cost of the observability layer on the
// full MR-3274 pipeline. Recording-on and recording-off runs are interleaved
// within each iteration (back-to-back, so machine noise hits both sides
// equally) and the ratio is reported as the "overhead_pct" metric — the
// budget is <5%, since disabled hot paths pay only nil checks and counters
// are batched per stage.
func BenchmarkObsOverhead(b *testing.B) {
	var bm *subjects.Benchmark
	for _, x := range bench.Benchmarks() {
		if x.ID == "MR-3274" {
			bm = x
		}
	}
	if bm == nil {
		b.Fatal("MR-3274 missing")
	}
	run := func(rec *obs.Recorder) time.Duration {
		opts := core.Options{Seed: bm.Seed, MaxSteps: bm.MaxSteps, Obs: rec}
		start := time.Now()
		if _, err := core.Detect(bm.Workload, opts); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	run(nil) // warm up
	var offTotal, onTotal time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offTotal += run(nil)
		onTotal += run(obs.New())
	}
	b.StopTimer()
	if offTotal > 0 {
		pct := 100 * (float64(onTotal)/float64(offTotal) - 1)
		b.ReportMetric(pct, "overhead_pct")
	}
}

func benchmarkPlacement(b *testing.B, naive bool) {
	var res *core.Result
	for _, bm := range bench.Benchmarks() {
		if bm.ID == "HB-4539" {
			r, err := core.Detect(bm.Workload, core.Options{Seed: bm.Seed})
			if err != nil {
				b.Fatal(err)
			}
			res = r
		}
	}
	b.ResetTimer()
	confirmed, total := 0, 0
	for i := 0; i < b.N; i++ {
		vals := core.ValidateAll(res, core.TriggerOptions{MaxSteps: 200_000, Naive: naive})
		confirmed, total = 0, len(vals)
		for _, v := range vals {
			if v.Verdict == trigger.VerdictHarmful || v.Verdict == trigger.VerdictBenign {
				confirmed++
			}
		}
	}
	b.ReportMetric(float64(confirmed), "confirmed")
	b.ReportMetric(float64(total), "reports")
}
